//! The TCP accept loop behind `mot3d serve`.
//!
//! One thread per connection; every connection shares the process-wide
//! [`CachedExecutor`], so concurrent clients dedupe against the same
//! store and in-flight table. The response stream is written by the
//! bench crate's [`JsonLinesSink`], which keeps served bytes identical
//! to offline `mot3d sweep --json` output.
//!
//! [`JsonLinesSink`]: mot3d_bench::sink::JsonLinesSink

use crate::codec::Fingerprint;
use crate::exec::CachedExecutor;
use crate::protocol::{self, PlanRequest};
use crate::store::ResultStore;
use mot3d_bench::sink::{JsonLinesSink, PlanMeta, RecordSink};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;

/// Everything `serve` needs to come up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (printed to stderr).
    pub addr: String,
    /// Result-store directory.
    pub cache_dir: PathBuf,
    /// Worker threads per submission (`None`: the pool decides).
    pub threads: Option<usize>,
    /// Cap on each worker's thread-local cluster cache.
    pub pool_capacity: Option<usize>,
    /// Exit after this many connections (CI smoke tests); `None` runs
    /// until killed.
    pub accept_limit: Option<u64>,
    /// Cache-key fingerprint (tests override it to segregate stores).
    pub fingerprint: Fingerprint,
}

impl ServerConfig {
    /// The default configuration over `cache_dir`: loopback port 4016,
    /// pool-resolved threads, a 32-cluster pool cap, no accept limit.
    pub fn new(cache_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            addr: "127.0.0.1:4016".to_string(),
            cache_dir: cache_dir.into(),
            threads: None,
            pool_capacity: Some(32),
            accept_limit: None,
            fingerprint: Fingerprint::current(),
        }
    }
}

/// A bound-but-not-yet-serving server: [`ServerConfig::bind`] returns
/// one so callers (tests, scripts binding port 0) can learn the actual
/// address before the accept loop starts.
#[derive(Debug)]
pub struct BoundServer {
    listener: TcpListener,
    exec: CachedExecutor,
    accept_limit: Option<u64>,
}

impl ServerConfig {
    /// Opens the store and binds the listen socket.
    ///
    /// # Errors
    ///
    /// Fails when the store cannot open or the address cannot bind.
    pub fn bind(&self) -> io::Result<BoundServer> {
        let store = ResultStore::open(&self.cache_dir)?;
        let exec = CachedExecutor::new(
            store,
            self.fingerprint.clone(),
            self.threads,
            self.pool_capacity,
        );
        Ok(BoundServer {
            listener: TcpListener::bind(&self.addr)?,
            exec,
            accept_limit: self.accept_limit,
        })
    }
}

impl BoundServer {
    /// The actual listen address (resolves a port-0 bind).
    ///
    /// # Errors
    ///
    /// Propagates the socket's address lookup failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop until the accept limit (if any) is reached,
    /// one thread per connection. Per-connection I/O errors are
    /// reported to stderr and do not stop the server.
    pub fn run(self) {
        let mut accepted: u64 = 0;
        std::thread::scope(|scope| {
            for conn in self.listener.incoming() {
                match conn {
                    Ok(stream) => {
                        let exec = &self.exec;
                        scope.spawn(move || {
                            let peer = peer_label(&stream);
                            if let Err(e) = handle(exec, stream) {
                                eprintln!("mot3d serve: {peer}: {e}");
                            }
                        });
                    }
                    Err(e) => eprintln!("mot3d serve: accept failed: {e}"),
                }
                accepted += 1;
                if self.accept_limit.is_some_and(|limit| accepted >= limit) {
                    break;
                }
            }
        });
    }
}

/// Runs the service until the accept limit (if any) is reached. Prints
/// the bound address to stderr as `mot3d serve: listening on <addr>` —
/// tests and scripts binding port 0 parse that line.
///
/// # Errors
///
/// Fails when the store cannot open or the address cannot bind.
pub fn serve(config: &ServerConfig) -> io::Result<()> {
    let server = config.bind()?;
    eprintln!(
        "mot3d serve: listening on {} (cache: {})",
        server.local_addr()?,
        config.cache_dir.display()
    );
    server.run();
    Ok(())
}

fn peer_label(stream: &TcpStream) -> String {
    stream.peer_addr().map_or_else(
        |_| "<unknown peer>".to_string(),
        |a: SocketAddr| a.to_string(),
    )
}

/// Serves one connection: read a request line, stream the response.
fn handle(exec: &CachedExecutor, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut out = BufWriter::new(stream);
    let trimmed = line.trim_end_matches(['\n', '\r']);
    match respond(exec, trimmed, &mut out) {
        Ok(()) => {}
        // The client sees the reason; the server stays up.
        Err(Reject::Client(msg)) => writeln!(out, "{}", protocol::error_line(&msg))?,
        Err(Reject::Io(e)) => return Err(e),
    }
    out.flush()
}

/// Why a submission produced no record stream.
enum Reject {
    /// The request was invalid — reportable over the wire.
    Client(String),
    /// The connection or store failed — only loggable.
    Io(io::Error),
}

impl From<io::Error> for Reject {
    fn from(e: io::Error) -> Self {
        Reject::Io(e)
    }
}

fn respond(
    exec: &CachedExecutor,
    request_line: &str,
    out: &mut BufWriter<TcpStream>,
) -> Result<(), Reject> {
    if request_line.is_empty() {
        return Err(Reject::Client("empty request".to_string()));
    }
    let request = PlanRequest::parse(request_line).map_err(Reject::Client)?;
    let plan = request.to_plan().map_err(Reject::Client)?;
    if let Err(msg) = plan.check() {
        return Err(Reject::Client(msg));
    }
    let scale = request.resolved_scale().map_err(Reject::Client)?;
    // The header + records must be the exact bytes `mot3d sweep --json`
    // writes, so the same sink serialises them.
    let mut sink = JsonLinesSink::new(&mut *out);
    sink.begin(&PlanMeta {
        plan: &request.name,
        points: plan.len(),
        scale: scale.scale,
        seed: scale.seed,
    })?;
    let outcome = exec.run_plan(&plan, |record| sink.record(record))?;
    sink.finish()?;
    writeln!(
        out,
        "{}",
        protocol::summary_line(outcome, exec.store_stats())
    )?;
    Ok(())
}
