//! The TCP accept loop behind `mot3d serve`.
//!
//! One thread per connection; every connection shares the process-wide
//! [`CachedExecutor`], so concurrent clients dedupe against the same
//! store and in-flight table. The response stream is written by the
//! bench crate's [`JsonLinesSink`], which keeps served bytes identical
//! to offline `mot3d sweep --json` output.
//!
//! ## Connection hygiene & shutdown
//!
//! Every accepted socket gets read/write deadlines (an idle client
//! holding a connection open is dropped, a stalled reader cannot wedge
//! a worker forever), a panicking connection thread is caught and
//! logged without taking the accept loop down, and two events start a
//! **graceful drain** — the accept limit, and a client sending the
//! [`protocol::SHUTDOWN_LINE`] control request: the listener stops
//! accepting, every in-flight submission runs to completion, the store
//! flushes, and [`serve`] returns so the process exits 0.
//!
//! [`JsonLinesSink`]: mot3d_bench::sink::JsonLinesSink

use crate::codec::Fingerprint;
use crate::exec::{CachedExecutor, PlanOutcome, PointOutcome};
use crate::fault::{FaultSite, Faults};
use crate::protocol::{self, PlanRequest};
use crate::store::ResultStore;
use mot3d_bench::sink::{JsonLinesSink, PlanMeta, RecordSink};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Default per-read deadline: an idle client that never sends its
/// request line is dropped after this long.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Default per-write deadline: a client that stops draining its
/// response stream is dropped once one write blocks this long.
pub const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Everything `serve` needs to come up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (printed to stderr).
    pub addr: String,
    /// Result-store directory.
    pub cache_dir: PathBuf,
    /// Worker threads per submission (`None`: the pool decides).
    pub threads: Option<usize>,
    /// Cap on each worker's thread-local cluster cache.
    pub pool_capacity: Option<usize>,
    /// Exit after this many successfully accepted connections (CI
    /// smoke tests); `None` runs until shut down or killed.
    pub accept_limit: Option<u64>,
    /// Per-read socket deadline (`None` disables — tests only).
    pub read_timeout: Option<Duration>,
    /// Per-write socket deadline (`None` disables — tests only).
    pub write_timeout: Option<Duration>,
    /// Deterministic fault injection ([`Faults::none`] in production).
    pub faults: Faults,
    /// Cache-key fingerprint (tests override it to segregate stores).
    pub fingerprint: Fingerprint,
}

impl ServerConfig {
    /// The default configuration over `cache_dir`: loopback port 4016,
    /// pool-resolved threads, a 32-cluster pool cap, no accept limit,
    /// 30 s socket deadlines, no fault injection.
    pub fn new(cache_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            addr: "127.0.0.1:4016".to_string(),
            cache_dir: cache_dir.into(),
            threads: None,
            pool_capacity: Some(32),
            accept_limit: None,
            read_timeout: Some(DEFAULT_READ_TIMEOUT),
            write_timeout: Some(DEFAULT_WRITE_TIMEOUT),
            faults: Faults::none(),
            fingerprint: Fingerprint::current(),
        }
    }
}

/// A bound-but-not-yet-serving server: [`ServerConfig::bind`] returns
/// one so callers (tests, scripts binding port 0) can learn the actual
/// address before the accept loop starts.
#[derive(Debug)]
pub struct BoundServer {
    listener: TcpListener,
    exec: CachedExecutor,
    accept_limit: Option<u64>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

impl ServerConfig {
    /// Opens the store and binds the listen socket.
    ///
    /// # Errors
    ///
    /// Fails when the store cannot open or the address cannot bind.
    pub fn bind(&self) -> io::Result<BoundServer> {
        let mut store = ResultStore::open(&self.cache_dir)?;
        store.set_faults(self.faults.clone());
        let mut exec = CachedExecutor::new(
            store,
            self.fingerprint.clone(),
            self.threads,
            self.pool_capacity,
        );
        exec.set_faults(self.faults.clone());
        Ok(BoundServer {
            listener: TcpListener::bind(&self.addr)?,
            exec,
            accept_limit: self.accept_limit,
            read_timeout: self.read_timeout,
            write_timeout: self.write_timeout,
        })
    }
}

/// Tracks the `--accept-limit` budget. Only *successful* accepts spend
/// a slot — a transient accept error must not silently consume a smoke
/// test's connection budget.
#[derive(Debug, Clone, Copy)]
struct AcceptBudget {
    limit: Option<u64>,
    accepted: u64,
}

impl AcceptBudget {
    fn new(limit: Option<u64>) -> Self {
        AcceptBudget { limit, accepted: 0 }
    }

    /// Records one successful accept; true when the budget is spent.
    fn spend(&mut self) -> bool {
        self.accepted += 1;
        self.limit.is_some_and(|limit| self.accepted >= limit)
    }
}

impl BoundServer {
    /// The actual listen address (resolves a port-0 bind).
    ///
    /// # Errors
    ///
    /// Propagates the socket's address lookup failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop until the accept limit is reached or a
    /// shutdown request arrives, then drains: every connection thread
    /// joins before this returns, and the store is flushed. One thread
    /// per connection; per-connection I/O errors (and even panics) are
    /// reported to stderr and do not stop the server.
    pub fn run(self) {
        let shutdown = AtomicBool::new(false);
        let mut budget = AcceptBudget::new(self.accept_limit);
        std::thread::scope(|scope| {
            for conn in self.listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break; // likely our own wake-up connection
                }
                match conn {
                    Ok(stream) => {
                        let exec = &self.exec;
                        let listener = &self.listener;
                        let shutdown = &shutdown;
                        let timeouts = (self.read_timeout, self.write_timeout);
                        scope.spawn(move || {
                            let peer = peer_label(&stream);
                            let outcome =
                                catch_unwind(AssertUnwindSafe(|| handle(exec, stream, timeouts)));
                            match outcome {
                                Ok(Ok(Handled::Shutdown)) => {
                                    eprintln!("mot3d serve: shutdown requested by {peer}");
                                    shutdown.store(true, Ordering::SeqCst);
                                    wake_accept_loop(listener);
                                }
                                Ok(Ok(Handled::Served)) => {}
                                Ok(Err(e)) => eprintln!("mot3d serve: {peer}: {e}"),
                                Err(_) => {
                                    eprintln!("mot3d serve: {peer}: connection thread panicked")
                                }
                            }
                        });
                        if budget.spend() {
                            break;
                        }
                    }
                    Err(e) => eprintln!("mot3d serve: accept failed: {e}"),
                }
            }
            // Scope join == drain: every accepted connection (including
            // the one that requested shutdown) finishes its stream.
        });
        self.exec.flush_store();
    }
}

/// Runs the service until the accept limit is reached or a shutdown
/// request drains it. Prints the bound address to stderr as
/// `mot3d serve: listening on <addr>` — tests and scripts binding
/// port 0 parse that line.
///
/// # Errors
///
/// Fails when the store cannot open or the address cannot bind.
pub fn serve(config: &ServerConfig) -> io::Result<()> {
    let server = config.bind()?;
    eprintln!(
        "mot3d serve: listening on {} (cache: {}{})",
        server.local_addr()?,
        config.cache_dir.display(),
        if config.faults.is_active() {
            ", FAULT INJECTION ACTIVE"
        } else {
            ""
        }
    );
    server.run();
    eprintln!("mot3d serve: drained, exiting");
    Ok(())
}

fn peer_label(stream: &TcpStream) -> String {
    stream.peer_addr().map_or_else(
        |_| "<unknown peer>".to_string(),
        |a: SocketAddr| a.to_string(),
    )
}

/// Unblocks an accept loop parked in `accept(2)` by dialing it once.
/// An unspecified bind address (0.0.0.0/::) is not dialable, so the
/// wake-up targets the matching loopback instead.
fn wake_accept_loop(listener: &TcpListener) {
    let Ok(mut addr) = listener.local_addr() else {
        return;
    };
    match addr.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => addr.set_ip(IpAddr::V4(Ipv4Addr::LOCALHOST)),
        IpAddr::V6(ip) if ip.is_unspecified() => addr.set_ip(IpAddr::V6(Ipv6Addr::LOCALHOST)),
        _ => {}
    }
    // A refused dial means the loop is no longer parked — fine either way.
    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
}

/// How one connection concluded.
enum Handled {
    /// A submission (or a rejection) was streamed.
    Served,
    /// The client requested a graceful shutdown (already acknowledged).
    Shutdown,
}

/// Serves one connection: read a request line, stream the response.
fn handle(
    exec: &CachedExecutor,
    stream: TcpStream,
    (read_timeout, write_timeout): (Option<Duration>, Option<Duration>),
) -> io::Result<Handled> {
    stream.set_read_timeout(read_timeout)?;
    stream.set_write_timeout(write_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut out = BufWriter::new(stream);
    let trimmed = line.trim_end_matches(['\n', '\r']);
    if protocol::is_shutdown(trimmed) {
        writeln!(out, "{}", protocol::SHUTDOWN_LINE)?;
        out.flush()?;
        return Ok(Handled::Shutdown);
    }
    match respond(exec, trimmed, &mut out) {
        Ok(()) => {}
        // The client sees the reason; the server stays up.
        Err(Reject::Client(msg)) => writeln!(out, "{}", protocol::error_line(&msg))?,
        Err(Reject::Io(e)) => return Err(e),
    }
    out.flush()?;
    Ok(Handled::Served)
}

/// Why a submission produced no record stream.
enum Reject {
    /// The request was invalid — reportable over the wire.
    Client(String),
    /// The connection or store failed — only loggable.
    Io(io::Error),
}

impl From<io::Error> for Reject {
    fn from(e: io::Error) -> Self {
        Reject::Io(e)
    }
}

fn respond(
    exec: &CachedExecutor,
    request_line: &str,
    out: &mut BufWriter<TcpStream>,
) -> Result<(), Reject> {
    if request_line.is_empty() {
        return Err(Reject::Client("empty request".to_string()));
    }
    let request = PlanRequest::parse(request_line).map_err(Reject::Client)?;
    let plan = request.to_plan().map_err(Reject::Client)?;
    if let Err(msg) = plan.check() {
        return Err(Reject::Client(msg));
    }
    let scale = request.resolved_scale().map_err(Reject::Client)?;
    if request.trace {
        return respond_traced(exec, &request, &plan, scale, out);
    }
    // The header + records must be the exact bytes `mot3d sweep --json`
    // writes, so the same sink serialises them.
    let faults = exec.faults().clone();
    let mut sink = JsonLinesSink::new(&mut *out);
    sink.begin(&PlanMeta {
        plan: &request.name,
        points: plan.len(),
        scale: scale.scale,
        seed: scale.seed,
    })?;
    let outcome = exec.run_plan(&plan, |po| {
        // An injected mid-stream drop: the line is *not* written and
        // the connection dies, exactly like a yanked network cable.
        if faults.should_fail(FaultSite::StreamWrite) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected fault: stream drop",
            ));
        }
        match po {
            PointOutcome::Record(record) => sink.record(record),
            PointOutcome::Failed { label, error } => {
                sink.raw_line(&protocol::failed_line(label, error))
            }
        }
    })?;
    sink.finish()?;
    writeln!(
        out,
        "{}",
        protocol::summary_line(outcome, exec.store_stats(), None)
    )?;
    Ok(())
}

/// Serves a `"trace": true` submission: every point runs fresh with the
/// timeline tracer attached, bypassing the result cache and the
/// in-flight table entirely — a cache hit has no timeline to write, and
/// traced records are bit-identical to cached ones anyway (tracing is
/// observation-only). One Perfetto-loadable file lands per point under
/// `<store_dir>/traces/<plan>-<scale>-<seed>/`; the summary line
/// reports that directory as `"trace_dir"`.
fn respond_traced(
    exec: &CachedExecutor,
    request: &PlanRequest,
    plan: &mot3d_bench::plan::ExperimentPlan,
    scale: mot3d_bench::ExperimentScale,
    out: &mut BufWriter<TcpStream>,
) -> Result<(), Reject> {
    let dir = exec.store_dir().join("traces").join(trace_dir_name(
        &request.name,
        scale.scale,
        scale.seed,
    ));
    let records = {
        // The record stream stays the exact `mot3d sweep --json` bytes;
        // `run_traced_with` drives begin/record/finish itself.
        let mut sink = JsonLinesSink::new(&mut *out);
        plan.run_traced_with(&dir, &mut [&mut sink], |_, _, _| {})?
    };
    let n = records.len() as u64;
    let outcome = PlanOutcome {
        points: n,
        executed: n,
        ..PlanOutcome::default()
    };
    writeln!(
        out,
        "{}",
        protocol::summary_line(
            outcome,
            exec.store_stats(),
            Some(&dir.display().to_string())
        )
    )?;
    Ok(())
}

/// A filesystem-safe per-submission directory name: deterministic in
/// the request (same plan/scale/seed → same directory, and identical
/// bytes rewritten), so no server-side counter state is needed.
fn trace_dir_name(plan: &str, scale: f64, seed: u64) -> String {
    let safe: String = plan
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}-{scale}-{seed}")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `--accept-limit` regression: the budget is only ever charged
    /// for successful accepts (the `spend` call sits inside the
    /// `Ok(stream)` arm of the accept loop), so a burst of transient
    /// accept errors can no longer eat a smoke test's connection
    /// budget. This pins the counting itself.
    #[test]
    fn accept_budget_spends_one_slot_per_successful_accept() {
        let mut budget = AcceptBudget::new(Some(3));
        assert!(!budget.spend());
        assert!(!budget.spend());
        assert!(budget.spend(), "third successful accept exhausts limit 3");
        assert!(budget.spend(), "an exhausted budget stays exhausted");
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let mut budget = AcceptBudget::new(None);
        for _ in 0..1000 {
            assert!(!budget.spend());
        }
    }

    #[test]
    fn default_config_has_socket_deadlines_and_no_faults() {
        let c = ServerConfig::new("/tmp/x");
        assert_eq!(c.read_timeout, Some(DEFAULT_READ_TIMEOUT));
        assert_eq!(c.write_timeout, Some(DEFAULT_WRITE_TIMEOUT));
        assert!(!c.faults.is_active());
    }

    #[test]
    fn trace_dir_names_are_deterministic_and_filesystem_safe() {
        assert_eq!(trace_dir_name("sweep", 0.002, 1), "sweep-0.002-1");
        assert_eq!(
            trace_dir_name("a b/c", 0.35, 42),
            trace_dir_name("a b/c", 0.35, 42),
        );
        let odd = trace_dir_name("a b/c:d", 0.35, 42);
        assert!(!odd.contains('/') && !odd.contains(':') && !odd.contains(' '));
    }
}
