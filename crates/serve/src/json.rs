//! A minimal JSON reader/writer for the wire protocol and the store.
//!
//! The workspace has no external dependencies, and the documents this
//! crate exchanges are small one-line objects, so a ~200-line recursive
//! descent parser is the whole story. One deliberate quirk: numbers are
//! kept as their **raw source text** ([`JsonValue::Num`]), because the
//! result store round-trips `f64`s as exact `to_bits` integers — a
//! detour through lossy float parsing would break the byte-identity
//! contract.

use std::fmt::Write as _;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as raw source text (see module docs).
    Num(String),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, members in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as an exact `u64` (rejects signs, fractions,
    /// and exponents — the store's bit-pattern fields must not take a
    /// float detour).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number's raw source text, if this is a number.
    pub fn num_text(&self) -> Option<&str> {
        match self {
            JsonValue::Num(raw) => Some(raw),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialises a string as a JSON string literal (quotes + escapes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one JSON document (surrounding whitespace allowed).
///
/// # Errors
///
/// Returns a human-readable description with a byte offset.
pub fn parse(src: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let raw = &self.bytes[start..self.pos];
        if raw.is_empty() || raw == b"-" {
            return Err(format!("bad number at byte {start}"));
        }
        let text = std::str::from_utf8(raw).map_err(|_| "non-UTF-8 number".to_string())?;
        Ok(JsonValue::Num(text.to_string()))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("unpaired surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u code point".to_string())?,
                            );
                        }
                        other => {
                            return Err(format!("unknown escape \\{}", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (strings arrive validated:
                    // the input is &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "non-UTF-8".to_string())?;
                    let c = s.chars().next().ok_or_else(|| "empty".to_string())?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].num_text(), Some("2.5"));
        assert_eq!(arr[1].as_u64(), None, "fractions are not u64s");
        assert_eq!(arr[2].as_u64(), None, "signs are not u64s");
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn u64_round_trips_at_full_precision() {
        let raw = format!("{{\"bits\": {}}}", u64::MAX);
        let v = parse(&raw).unwrap();
        assert_eq!(v.get("bits").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "q\"uote",
            "back\\slash",
            "tab\there",
            "snow\u{2603}",
        ] {
            let doc = format!("{{\"k\": {}}}", json_string(s));
            let v = parse(&doc).unwrap();
            assert_eq!(v.get("k").unwrap().as_str(), Some(s), "{doc}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nul",
            "01x",
            "{} {}",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn control_characters_escape_as_u_sequences() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
        let v = parse("\"a\\u0001b\"").unwrap();
        assert_eq!(v.as_str(), Some("a\u{1}b"));
    }
}
