//! Argument parsing for `mot3d serve` and `mot3d submit`.
//!
//! This is the serve crate's only module allowed to read the
//! environment (`HOME` for the default cache directory, the deprecated
//! `MOT3D_THREADS` fallback) — everything below it takes explicit
//! configuration, mirroring how `mot3d_bench::cli` isolates the bench
//! crate's env access.

use crate::client::{self, RetryPolicy};
use crate::fault::{FaultPlan, Faults};
use crate::protocol::PlanRequest;
use crate::server::{self, ServerConfig};
use std::io::{self, Write};
use std::path::PathBuf;
use std::time::Duration;

/// Entry point for `mot3d serve` (args exclude the subcommand).
/// Returns the process exit code (0/1/2 like the bench CLI).
pub fn run_serve(args: &[String]) -> i32 {
    let config = match parse_serve(args) {
        Ok(config) => config,
        Err(UsageError::Help) => {
            print!("{}", serve_usage());
            return 0;
        }
        Err(UsageError::Bad(msg)) => {
            eprintln!("mot3d serve: {msg}");
            eprintln!();
            eprint!("{}", serve_usage());
            return 2;
        }
    };
    match server::serve(&config) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("mot3d serve: {e}");
            1
        }
    }
}

/// Entry point for `mot3d submit` (args exclude the subcommand).
/// Returns the process exit code (0/1/2 like the bench CLI).
pub fn run_submit(args: &[String]) -> i32 {
    let (addr, request, policy) = match parse_submit(args) {
        Ok(parsed) => parsed,
        Err(UsageError::Help) => {
            print!("{}", submit_usage());
            return 0;
        }
        Err(UsageError::Bad(msg)) => {
            eprintln!("mot3d submit: {msg}");
            eprintln!();
            eprint!("{}", submit_usage());
            return 2;
        }
    };
    let stdout = io::stdout();
    match client::submit_report_with_retry(&addr, &request, &mut stdout.lock(), policy) {
        Ok(report) => {
            let outcome = report.outcome;
            let failed = if outcome.failed > 0 {
                format!(", {} failed", outcome.failed)
            } else {
                String::new()
            };
            eprintln!(
                "mot3d submit: {} points ({} cached, {} deduped, {} executed{failed})",
                outcome.points, outcome.hits, outcome.waited, outcome.executed,
            );
            if let Some(dir) = report.trace_dir {
                eprintln!("mot3d submit: trace files in {dir} (on the server)");
            }
            0
        }
        Err(e) => {
            eprintln!("mot3d submit: {e}");
            1
        }
    }
}

/// Entry point for `mot3d shutdown` (args exclude the subcommand).
/// Returns the process exit code (0/1/2 like the bench CLI).
pub fn run_shutdown(args: &[String]) -> i32 {
    let addr = match parse_shutdown(args) {
        Ok(addr) => addr,
        Err(UsageError::Help) => {
            print!("{}", shutdown_usage());
            return 0;
        }
        Err(UsageError::Bad(msg)) => {
            eprintln!("mot3d shutdown: {msg}");
            eprintln!();
            eprint!("{}", shutdown_usage());
            return 2;
        }
    };
    match client::shutdown(&addr) {
        Ok(()) => {
            eprintln!("mot3d shutdown: acknowledged by {addr}; server is draining");
            0
        }
        Err(e) => {
            eprintln!("mot3d shutdown: {e}");
            1
        }
    }
}

enum UsageError {
    Help,
    Bad(String),
}

fn bad(msg: impl Into<String>) -> UsageError {
    UsageError::Bad(msg.into())
}

fn serve_usage() -> String {
    "\
mot3d serve — long-running sweep service with a persistent result cache

USAGE: mot3d serve [options]

OPTIONS:
  --addr <host:port>     bind address, default 127.0.0.1:4016
                         (port 0 picks a free port, printed to stderr)
  --cache-dir <path>     result store, default ~/.cache/mot3d
  --threads <n>          worker threads per submission
                         (deprecated fallback: MOT3D_THREADS)
  --pool-cap <n>         cluster-cache cap per worker, default 32
  --accept-limit <n>     exit after n connections (CI smoke tests)
  --fault <spec>         deterministic fault injection (chaos tests):
                         comma-separated <site>@<index> terms with
                         sites point, store, drop — e.g. point@0,store@2
  --fault-seed <u64>     seeded fault schedule (replayable chaos runs)

A failing point streams a typed {\"failed\": true, ...} record and is
never cached; the rest of the plan completes. `mot3d shutdown` (or the
accept limit) stops accepting, drains in-flight submissions, flushes
the store, and exits 0.

PROTOCOL (one JSON document per line):
  client → {\"submit\": \"sweep\", \"bench\": \"fft\", \"scale\": \"tiny\"}
  server → the exact `mot3d sweep --json` stream for that plan,
           then {\"done\": true, ...cache counters...}
  client → {\"shutdown\": true}          (graceful drain request)
"
    .to_string()
}

fn submit_usage() -> String {
    "\
mot3d submit — send a sweep to a running `mot3d serve`

USAGE: mot3d submit [options]

The record stream goes to stdout (byte-identical to
`mot3d sweep --json` for the same axes); the summary goes to stderr.

OPTIONS:
  --addr <host:port>         server address, default 127.0.0.1:4016
  --plan <name>              plan name in the response header,
                             default \"sweep\"
  --scale <factor|tiny>      run-length factor, default 0.35
  --seed <u64>               workload seed override
  --bench <list|all>         cholesky,fft,fmm,ocean_contiguous,radix,
                             raytrace,volrend,water-nsquared
  --interconnect <list|all>  mot3d, mesh, bus-mesh, bus-tree
  --power-state <list|all>   full, pc16-mb8, pc4-mb32 (any pcX-mbY)
  --dram <list|all>          200ns, 63ns, 42ns
  --page <flat|open|both>    DRAM page-policy axis
  --repeat <n>               runs per grid cell (each repeat reseeds)
  --retries <n>              resubmit up to n times on a dead
                             connection (default 0); completed points
                             replay from the server cache, so the
                             retried stream is byte-identical
  --backoff <ms>             delay before the first retry, doubling
                             each further retry (default 200)
  --trace                    attach the timeline tracer: every point
                             runs fresh (bypassing the result cache),
                             one Perfetto-loadable file per point lands
                             under the server's cache directory, and
                             the trace directory is reported on stderr

EXAMPLE:
  mot3d submit --bench fft,radix --dram all --scale tiny > grid.jsonl
  mot3d submit --bench fft --power-state pc16-mb8 --scale tiny --trace
"
    .to_string()
}

fn shutdown_usage() -> String {
    "\
mot3d shutdown — gracefully drain a running `mot3d serve`

The server acknowledges, stops accepting, finishes every in-flight
submission, flushes the result store, and exits 0.

USAGE: mot3d shutdown [--addr <host:port>]

OPTIONS:
  --addr <host:port>     server address, default 127.0.0.1:4016
"
    .to_string()
}

/// The default store location: `$HOME/.cache/mot3d`, or a relative
/// `.cache/mot3d` for the (HOME-less) CI containers.
fn default_cache_dir() -> PathBuf {
    match std::env::var_os("HOME") {
        Some(home) if !home.is_empty() => PathBuf::from(home).join(".cache/mot3d"),
        _ => PathBuf::from(".cache/mot3d"),
    }
}

/// The deprecated `MOT3D_THREADS` fallback, with the same stderr note
/// the bench CLI prints when a flag has a preferred spelling.
fn deprecated_threads_fallback() -> Option<usize> {
    let raw = std::env::var("MOT3D_THREADS").ok()?;
    eprintln!("note: MOT3D_THREADS is deprecated; prefer `mot3d serve --threads <n>`");
    match raw.trim().parse::<usize>() {
        Ok(t) if t > 0 => Some(t),
        _ => {
            eprintln!("warning: ignoring malformed MOT3D_THREADS={raw:?}");
            None
        }
    }
}

fn parse_serve(args: &[String]) -> Result<ServerConfig, UsageError> {
    let mut config = ServerConfig::new(default_cache_dir());
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if matches!(flag.as_str(), "--help" | "-h") {
            return Err(UsageError::Help);
        }
        let value = it
            .next()
            .ok_or_else(|| bad(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--cache-dir" => config.cache_dir = PathBuf::from(value),
            "--threads" => {
                let t: usize = value.parse().ok().filter(|&t| t > 0).ok_or_else(|| {
                    bad(format!("--threads needs a positive integer, got {value:?}"))
                })?;
                config.threads = Some(t);
            }
            "--pool-cap" => {
                let c: usize = value.parse().ok().filter(|&c| c > 0).ok_or_else(|| {
                    bad(format!(
                        "--pool-cap needs a positive integer, got {value:?}"
                    ))
                })?;
                config.pool_capacity = Some(c);
            }
            "--accept-limit" => {
                let n: u64 = value.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                    bad(format!(
                        "--accept-limit needs a positive integer, got {value:?}"
                    ))
                })?;
                config.accept_limit = Some(n);
            }
            "--fault" => {
                let plan = FaultPlan::parse(value).map_err(bad)?;
                config.faults = Faults::plan(plan);
            }
            "--fault-seed" => {
                let seed: u64 = value.parse().map_err(|_| {
                    bad(format!(
                        "--fault-seed needs an unsigned integer, got {value:?}"
                    ))
                })?;
                config.faults = Faults::plan(FaultPlan::from_seed(seed, 16, 2));
            }
            other => return Err(bad(format!("unknown option {other:?}"))),
        }
    }
    if config.threads.is_none() {
        config.threads = deprecated_threads_fallback();
    }
    Ok(config)
}

fn parse_shutdown(args: &[String]) -> Result<String, UsageError> {
    let mut addr = "127.0.0.1:4016".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if matches!(flag.as_str(), "--help" | "-h") {
            return Err(UsageError::Help);
        }
        let value = it
            .next()
            .ok_or_else(|| bad(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--addr" => addr = value.clone(),
            other => return Err(bad(format!("unknown option {other:?}"))),
        }
    }
    Ok(addr)
}

fn parse_submit(args: &[String]) -> Result<(String, PlanRequest, RetryPolicy), UsageError> {
    let mut addr = "127.0.0.1:4016".to_string();
    let mut request = PlanRequest::new("sweep");
    let mut policy = RetryPolicy::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if matches!(flag.as_str(), "--help" | "-h") {
            return Err(UsageError::Help);
        }
        // The one valueless flag: request the timeline tracer.
        if flag == "--trace" {
            request.trace = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| bad(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--addr" => addr = value.clone(),
            "--plan" => request.name = value.clone(),
            "--scale" => request.scale = Some(value.clone()),
            "--seed" => {
                let s: u64 = value
                    .parse()
                    .map_err(|_| bad(format!("--seed needs an unsigned integer, got {value:?}")))?;
                request.seed = Some(s);
            }
            "--bench" => request.bench = Some(value.clone()),
            "--interconnect" => request.interconnect = Some(value.clone()),
            "--power-state" => request.power_state = Some(value.clone()),
            "--dram" => request.dram = Some(value.clone()),
            "--page" => request.page = Some(value.clone()),
            "--repeat" => {
                let r: u32 = value.parse().ok().filter(|&r| r > 0).ok_or_else(|| {
                    bad(format!("--repeat needs a positive integer, got {value:?}"))
                })?;
                request.repeat = Some(r);
            }
            "--retries" => {
                policy.retries = value.parse().map_err(|_| {
                    bad(format!(
                        "--retries needs an unsigned integer, got {value:?}"
                    ))
                })?;
            }
            "--backoff" => {
                let ms: u64 = value.parse().ok().filter(|&ms| ms > 0).ok_or_else(|| {
                    bad(format!(
                        "--backoff needs a positive millisecond count, got {value:?}"
                    ))
                })?;
                policy.backoff = Duration::from_millis(ms);
            }
            other => return Err(bad(format!("unknown option {other:?}"))),
        }
    }
    // Surface bad axis values before dialing the server.
    if let Err(msg) = request.to_plan().and_then(|p| p.check()) {
        return Err(bad(msg));
    }
    let _ = io::stderr().flush();
    Ok((addr, request, policy))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn serve_flags_parse() {
        let c = parse_serve(&argv(
            "--addr 127.0.0.1:0 --cache-dir /tmp/x --threads 3 --pool-cap 4 --accept-limit 2",
        ))
        .ok()
        .unwrap();
        assert_eq!(c.addr, "127.0.0.1:0");
        assert_eq!(c.cache_dir, PathBuf::from("/tmp/x"));
        assert_eq!(c.threads, Some(3));
        assert_eq!(c.pool_capacity, Some(4));
        assert_eq!(c.accept_limit, Some(2));
        assert!(!c.faults.is_active(), "no fault flag, no fault plan");
        assert!(parse_serve(&argv("--threads 0")).is_err());
        assert!(parse_serve(&argv("--nope 1")).is_err());
        assert!(parse_serve(&argv("--addr")).is_err(), "missing value");
    }

    #[test]
    fn serve_fault_flags_build_a_plan() {
        let c = parse_serve(&argv("--fault point@0,store@2")).ok().unwrap();
        assert!(c.faults.is_active());
        let c = parse_serve(&argv("--fault-seed 42")).ok().unwrap();
        assert!(c.faults.is_active());
        assert!(parse_serve(&argv("--fault bogus@x")).is_err());
        assert!(parse_serve(&argv("--fault-seed nope")).is_err());
    }

    #[test]
    fn submit_flags_build_the_request() {
        let (addr, req, policy) = parse_submit(&argv(
            "--addr 127.0.0.1:7 --plan p --bench fft --dram all --scale tiny --seed 9 --repeat 2 \
             --retries 3 --backoff 50",
        ))
        .ok()
        .unwrap();
        assert_eq!(addr, "127.0.0.1:7");
        assert_eq!(req.name, "p");
        assert_eq!(req.bench.as_deref(), Some("fft"));
        assert_eq!(req.dram.as_deref(), Some("all"));
        assert_eq!(req.scale.as_deref(), Some("tiny"));
        assert_eq!(req.seed, Some(9));
        assert_eq!(req.repeat, Some(2));
        assert_eq!(policy.retries, 3);
        assert_eq!(policy.backoff, Duration::from_millis(50));
        assert!(!req.trace, "tracing is opt-in");
        let (_, traced, _) = parse_submit(&argv("--bench fft --trace --scale tiny"))
            .ok()
            .unwrap();
        assert!(traced.trace, "--trace is the one valueless flag");
        assert_eq!(traced.scale.as_deref(), Some("tiny"));
        assert!(
            parse_submit(&argv("--bench nonesuch")).is_err(),
            "axis values are validated before dialing"
        );
        assert!(parse_submit(&argv("--repeat 0")).is_err());
        assert!(parse_submit(&argv("--retries x")).is_err());
        assert!(parse_submit(&argv("--backoff 0")).is_err());
    }

    #[test]
    fn defaults_target_the_local_server() {
        let (addr, req, policy) = parse_submit(&[]).ok().unwrap();
        assert_eq!(addr, "127.0.0.1:4016");
        assert_eq!(req, PlanRequest::new("sweep"));
        assert_eq!(policy, RetryPolicy::default());
    }

    #[test]
    fn shutdown_takes_only_an_addr() {
        assert_eq!(parse_shutdown(&[]).ok().unwrap(), "127.0.0.1:4016");
        assert_eq!(
            parse_shutdown(&argv("--addr 10.0.0.1:9")).ok().unwrap(),
            "10.0.0.1:9"
        );
        assert!(parse_shutdown(&argv("--nope 1")).is_err());
    }
}
