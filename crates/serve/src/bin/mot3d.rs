//! The unified `mot3d` binary.
//!
//! `serve`, `submit` and `shutdown` dispatch into
//! [`mot3d_serve::cli`]; every other subcommand (the figures, `sweep`,
//! `lint`, `perf`, …) falls through to [`mot3d_bench::cli::run`],
//! which owns the shared usage text.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serve") => mot3d_serve::cli::run_serve(&args[1..]),
        Some("submit") => mot3d_serve::cli::run_submit(&args[1..]),
        Some("shutdown") => mot3d_serve::cli::run_shutdown(&args[1..]),
        _ => mot3d_bench::cli::run(args),
    };
    std::process::exit(code);
}
