//! The persistent content-addressed result store.
//!
//! ## On-disk layout (`<cache-dir>/`)
//!
//! ```text
//! seg-00000.jsonl   append-only data segments, one JSON line per result:
//! seg-00001.jsonl     {"key": "<32 hex>", "metrics": {…exact codec…}}
//! index.jsonl       append-only index, one JSON line per stored result:
//!                     {"key": "<32 hex>", "seg": 0, "off": 123, "len": 456}
//! ```
//!
//! Segments roll over at a byte limit (4 MiB by default) so no single
//! file grows without bound; the index maps each [`CacheKey`] to the
//! exact byte range of its line, so a lookup is one seek + one read.
//! Everything is append-only — eviction is `rm seg-*.jsonl index.jsonl`
//! (documented in the README), never an in-place rewrite.
//!
//! ## Crash safety
//!
//! Data is flushed segment-first, index-second, so a crash can only
//! lose the *index* entry of a fully-written segment line, or leave a
//! truncated final line in one file. [`ResultStore::open`] repairs
//! both: malformed index lines are dropped, un-indexed segment tails
//! are re-indexed if they parse, and a truncated segment tail is
//! truncated away before the store appends anything new.

use crate::codec::{self, CacheKey};
use crate::fault::{FaultSite, Faults};
use crate::json::{self, JsonValue};
use mot3d_phys::fnv::FnvHashMap;
use mot3d_sim::Metrics;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Default segment rollover threshold in bytes.
pub const DEFAULT_SEGMENT_LIMIT: u64 = 4 * 1024 * 1024;

/// Hit/miss/insert counters since the store was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found a cached result.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Results written.
    pub inserts: u64,
}

/// Byte range of one stored result line.
#[derive(Debug, Clone, Copy)]
struct EntryLoc {
    seg: u32,
    off: u64,
    len: u64,
}

/// A persistent map from [`CacheKey`] to [`Metrics`] — see the module
/// docs for layout and crash-safety.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    index: FnvHashMap<CacheKey, EntryLoc>,
    index_out: BufWriter<File>,
    seg_id: u32,
    seg_out: BufWriter<File>,
    seg_len: u64,
    seg_limit: u64,
    stats: StoreStats,
    faults: Faults,
}

fn seg_path(dir: &Path, seg: u32) -> PathBuf {
    dir.join(format!("seg-{seg:05}.jsonl"))
}

fn parse_index_line(line: &str) -> Option<(CacheKey, EntryLoc)> {
    let v = json::parse(line).ok()?;
    let key = CacheKey::from_hex(v.get("key")?.as_str()?)?;
    let seg = u32::try_from(v.get("seg")?.as_u64()?).ok()?;
    let off = v.get("off")?.as_u64()?;
    let len = v.get("len")?.as_u64()?;
    Some((key, EntryLoc { seg, off, len }))
}

/// Parses one segment line, returning its key iff the whole line —
/// including the embedded metrics — is well-formed.
fn parse_segment_line(line: &str) -> Option<CacheKey> {
    let v = json::parse(line).ok()?;
    let key = CacheKey::from_hex(v.get("key")?.as_str()?)?;
    codec::metrics_from_value(v.get("metrics")?).ok()?;
    Some(key)
}

fn append_writer(path: &Path) -> io::Result<BufWriter<File>> {
    Ok(BufWriter::new(
        OpenOptions::new().create(true).append(true).open(path)?,
    ))
}

impl ResultStore {
    /// Opens (creating if needed) the store in `dir`, repairing any
    /// crash-truncated tail — see the module docs.
    ///
    /// # Errors
    ///
    /// Fails on directory/file I/O errors.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultStore> {
        Self::open_with_segment_limit(dir, DEFAULT_SEGMENT_LIMIT)
    }

    /// [`ResultStore::open`] with an explicit segment rollover limit
    /// (tests force small segments to exercise rollover).
    ///
    /// # Errors
    ///
    /// Fails on directory/file I/O errors.
    pub fn open_with_segment_limit(
        dir: impl Into<PathBuf>,
        seg_limit: u64,
    ) -> io::Result<ResultStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;

        // 1. Load the index, dropping malformed (crash-truncated) lines.
        let mut index: FnvHashMap<CacheKey, EntryLoc> = FnvHashMap::default();
        let index_path = dir.join("index.jsonl");
        if index_path.exists() {
            for line in fs::read_to_string(&index_path)?.lines() {
                if let Some((key, loc)) = parse_index_line(line) {
                    index.insert(key, loc);
                }
            }
        }

        // 2. Enumerate segments.
        let mut seg_ids: Vec<u32> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("seg-")
                .and_then(|rest| rest.strip_suffix(".jsonl"))
                .and_then(|id| id.parse::<u32>().ok())
            {
                seg_ids.push(id);
            }
        }
        seg_ids.sort_unstable();

        // 3. Repair every segment: drop index entries pointing past the
        //    segment's end, re-index parseable un-indexed tails, and
        //    truncate away garbage so future appends start on a clean
        //    line boundary.
        let mut recovered: Vec<(CacheKey, EntryLoc)> = Vec::new();
        for &seg in &seg_ids {
            let path = seg_path(&dir, seg);
            let data = fs::read(&path)?;
            let file_len = data.len() as u64;
            // An entry is valid only if its line *and* trailing newline
            // fit inside the file (a tail truncated exactly at the
            // newline would otherwise corrupt the next append).
            index.retain(|_, loc| loc.seg != seg || loc.off + loc.len < file_len);
            let indexed_end = index
                .values()
                .filter(|loc| loc.seg == seg)
                .map(|loc| loc.off + loc.len + 1)
                .max()
                .unwrap_or(0) as usize;
            let mut pos = indexed_end;
            let mut valid_end = indexed_end;
            while pos < data.len() {
                let Some(nl) = data[pos..].iter().position(|&b| b == b'\n') else {
                    break; // truncated final line
                };
                let Some(key) = std::str::from_utf8(&data[pos..pos + nl])
                    .ok()
                    .and_then(parse_segment_line)
                else {
                    break; // corrupt line: everything after is suspect
                };
                let loc = EntryLoc {
                    seg,
                    off: pos as u64,
                    len: nl as u64,
                };
                index.insert(key, loc);
                recovered.push((key, loc));
                pos += nl + 1;
                valid_end = pos;
            }
            if (valid_end as u64) < file_len {
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(valid_end as u64)?;
            }
        }

        // 4. Re-append recovered entries to the index so the next open
        //    does not need to re-scan.
        let mut index_out = append_writer(&index_path)?;
        for (key, loc) in &recovered {
            writeln!(
                index_out,
                "{{\"key\": \"{}\", \"seg\": {}, \"off\": {}, \"len\": {}}}",
                key.to_hex(),
                loc.seg,
                loc.off,
                loc.len
            )?;
        }
        index_out.flush()?;

        // 5. Open the newest segment (or the first) for appending.
        let seg_id = seg_ids.last().copied().unwrap_or(0);
        let path = seg_path(&dir, seg_id);
        let seg_out = append_writer(&path)?;
        let seg_len = fs::metadata(&path)?.len();
        Ok(ResultStore {
            dir,
            index,
            index_out,
            seg_id,
            seg_out,
            seg_len,
            seg_limit: seg_limit.max(1),
            stats: StoreStats::default(),
            faults: Faults::none(),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of stored results.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no results.
    pub fn is_empty(&self) -> bool {
        self.index.len() == 0
    }

    /// Counters since open.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Attaches a fault-injection plan: scheduled
    /// [`FaultSite::StoreWrite`] operations make [`ResultStore::put`]
    /// fail with an I/O error before touching the segment file.
    pub fn set_faults(&mut self, faults: Faults) {
        self.faults = faults;
    }

    /// Flushes both append writers. Every [`ResultStore::put`] already
    /// flushes; this is the graceful-shutdown belt-and-braces for any
    /// future buffered path.
    ///
    /// # Errors
    ///
    /// Propagates the first writer flush failure.
    pub fn flush(&mut self) -> io::Result<()> {
        self.seg_out.flush()?;
        self.index_out.flush()
    }

    /// Looks up a cached result (counts a hit or a miss).
    ///
    /// # Errors
    ///
    /// Fails when the stored line cannot be read back or no longer
    /// parses (on-disk corruption after open).
    pub fn get(&mut self, key: CacheKey) -> io::Result<Option<Metrics>> {
        let Some(loc) = self.index.get(&key).copied() else {
            self.stats.misses += 1;
            return Ok(None);
        };
        // The line may still be buffered in the current segment writer.
        if loc.seg == self.seg_id {
            self.seg_out.flush()?;
        }
        let mut file = File::open(seg_path(&self.dir, loc.seg))?;
        file.seek(SeekFrom::Start(loc.off))?;
        let mut line = vec![0u8; usize::try_from(loc.len).map_err(|_| invalid("entry length"))?];
        file.read_exact(&mut line)?;
        let text = std::str::from_utf8(&line).map_err(|_| invalid("non-UTF-8 segment line"))?;
        let v = json::parse(text).map_err(invalid)?;
        let stored_key = v
            .get("key")
            .and_then(JsonValue::as_str)
            .and_then(CacheKey::from_hex)
            .ok_or_else(|| invalid("segment line has no key"))?;
        if stored_key != key {
            return Err(invalid("index points at a different key"));
        }
        let metrics = v
            .get("metrics")
            .ok_or_else(|| invalid("segment line has no metrics"))
            .and_then(|m| codec::metrics_from_value(m).map_err(invalid))?;
        self.stats.hits += 1;
        Ok(Some(metrics))
    }

    /// Inserts a result (idempotent: re-inserting an existing key is a
    /// no-op). Both the segment line and the index line are flushed
    /// before returning, segment first.
    ///
    /// # Errors
    ///
    /// Fails on write errors; a partial write is repaired at next open.
    pub fn put(&mut self, key: CacheKey, metrics: &Metrics) -> io::Result<()> {
        if self.index.contains_key(&key) {
            return Ok(());
        }
        if self.faults.should_fail(FaultSite::StoreWrite) {
            return Err(io::Error::other("injected fault: store write"));
        }
        let line = format!(
            "{{\"key\": \"{}\", \"metrics\": {}}}",
            key.to_hex(),
            codec::metrics_to_json(metrics)
        );
        let line_len = line.len() as u64 + 1;
        if self.seg_len > 0 && self.seg_len + line_len > self.seg_limit {
            self.seg_out.flush()?;
            self.seg_id += 1;
            self.seg_out = append_writer(&seg_path(&self.dir, self.seg_id))?;
            self.seg_len = 0;
        }
        let loc = EntryLoc {
            seg: self.seg_id,
            off: self.seg_len,
            len: line.len() as u64,
        };
        writeln!(self.seg_out, "{line}")?;
        self.seg_out.flush()?;
        self.seg_len += line_len;
        writeln!(
            self.index_out,
            "{{\"key\": \"{}\", \"seg\": {}, \"off\": {}, \"len\": {}}}",
            key.to_hex(),
            loc.seg,
            loc.off,
            loc.len
        )?;
        self.index_out.flush()?;
        self.index.insert(key, loc);
        self.stats.inserts += 1;
        Ok(())
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{cache_key, Fingerprint};
    use mot3d_bench::plan::ExperimentPlan;
    use mot3d_bench::ExperimentScale;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mot3d-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records(n: usize) -> Vec<mot3d_bench::plan::RunRecord> {
        ExperimentPlan::new("store")
            .page_policies([false, true])
            .scale(ExperimentScale::tiny())
            .threads(1)
            .run()
            .unwrap()
            .into_iter()
            .take(n)
            .collect()
    }

    #[test]
    fn put_get_round_trips_across_reopen() {
        let dir = scratch_dir("roundtrip");
        let fp = Fingerprint::current();
        let records = sample_records(3);
        {
            let mut store = ResultStore::open(&dir).unwrap();
            for r in &records {
                store.put(cache_key(&fp, &r.point), &r.metrics).unwrap();
            }
            assert_eq!(store.stats().inserts, 3);
            assert_eq!(store.len(), 3);
            let m = store
                .get(cache_key(&fp, &records[1].point))
                .unwrap()
                .unwrap();
            assert_eq!(m, records[1].metrics);
            assert_eq!(store.stats().hits, 1);
        }
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 3, "index persists");
        for r in &records {
            let m = store.get(cache_key(&fp, &r.point)).unwrap().unwrap();
            assert_eq!(m, r.metrics, "bit-identical across restart");
        }
        assert!(store
            .get(cache_key(&Fingerprint::custom("x"), &records[0].point))
            .unwrap()
            .is_none());
        assert_eq!(store.stats().misses, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reinsert_is_idempotent() {
        let dir = scratch_dir("idem");
        let fp = Fingerprint::current();
        let records = sample_records(1);
        let mut store = ResultStore::open(&dir).unwrap();
        let key = cache_key(&fp, &records[0].point);
        store.put(key, &records[0].metrics).unwrap();
        store.put(key, &records[0].metrics).unwrap();
        assert_eq!(store.stats().inserts, 1);
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_over_at_the_limit() {
        let dir = scratch_dir("rollover");
        let fp = Fingerprint::current();
        let records = sample_records(3);
        {
            // Every line exceeds 64 bytes, so each insert rolls over.
            let mut store = ResultStore::open_with_segment_limit(&dir, 64).unwrap();
            for r in &records {
                store.put(cache_key(&fp, &r.point), &r.metrics).unwrap();
            }
        }
        let segs = (0..3).filter(|&i| seg_path(&dir, i).exists()).count();
        assert!(segs >= 2, "expected rollover to create several segments");
        let mut store = ResultStore::open(&dir).unwrap();
        for r in &records {
            assert_eq!(
                store.get(cache_key(&fp, &r.point)).unwrap().unwrap(),
                r.metrics
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_index_tail_is_repaired_from_the_segment() {
        let dir = scratch_dir("repair-index");
        let fp = Fingerprint::current();
        let records = sample_records(2);
        {
            let mut store = ResultStore::open(&dir).unwrap();
            for r in &records {
                store.put(cache_key(&fp, &r.point), &r.metrics).unwrap();
            }
        }
        // Simulate a crash between segment flush and index flush: chop
        // the index's final line in half.
        let index_path = dir.join("index.jsonl");
        let index = fs::read_to_string(&index_path).unwrap();
        let keep = index.lines().next().unwrap().len() + 1 + 10;
        OpenOptions::new()
            .write(true)
            .open(&index_path)
            .unwrap()
            .set_len(keep as u64)
            .unwrap();
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2, "tail entry recovered from the segment");
        for r in &records {
            assert_eq!(
                store.get(cache_key(&fp, &r.point)).unwrap().unwrap(),
                r.metrics
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_segment_tail_is_dropped_and_store_keeps_working() {
        let dir = scratch_dir("repair-seg");
        let fp = Fingerprint::current();
        let records = sample_records(2);
        {
            let mut store = ResultStore::open(&dir).unwrap();
            store
                .put(cache_key(&fp, &records[0].point), &records[0].metrics)
                .unwrap();
        }
        // Simulate a crash mid-segment-write: a partial line with no
        // matching index entry.
        let seg = seg_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(b"{\"key\": \"dead").unwrap();
        drop(f);
        {
            let mut store = ResultStore::open(&dir).unwrap();
            assert_eq!(store.len(), 1);
            // The garbage tail was truncated away: a new insert starts
            // on a clean line boundary and reads back fine.
            store
                .put(cache_key(&fp, &records[1].point), &records[1].metrics)
                .unwrap();
        }
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        for r in &records {
            assert_eq!(
                store.get(cache_key(&fp, &r.point)).unwrap().unwrap(),
                r.metrics
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
