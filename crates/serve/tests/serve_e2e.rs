//! End-to-end service test over real TCP: two concurrent clients with
//! overlapping plans, then a resubmission — checking the acceptance
//! criteria directly: shared points simulate exactly once, streams are
//! byte-identical to an offline sweep, and a resubmitted plan is served
//! entirely from the cache.

use mot3d_bench::sink::{record_json_line, JsonLinesSink};
use mot3d_serve::client::{submit, submit_report};
use mot3d_serve::exec::PlanOutcome;
use mot3d_serve::{Fingerprint, PlanRequest, ServerConfig};
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mot3d-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// What `mot3d sweep --json` writes for `request`'s plan: header plus
/// one line per record, bytes the served stream must reproduce.
/// (`run_with` begins/finishes the sink itself.)
fn offline_stream(request: &PlanRequest) -> Vec<u8> {
    let plan = request.to_plan().unwrap();
    let mut out = Vec::new();
    let mut sink = JsonLinesSink::new(&mut out);
    let records = plan.run_with(&mut [&mut sink], |_, _, _| {}).unwrap();
    assert_eq!(records.len(), plan.len());
    out
}

fn request(benches: &str) -> PlanRequest {
    PlanRequest {
        bench: Some(benches.to_string()),
        dram: Some("63ns".to_string()),
        scale: Some("tiny".to_string()),
        ..PlanRequest::new("sweep")
    }
}

#[test]
fn overlapping_clients_share_work_and_resubmission_is_all_hits() {
    let dir = scratch_dir("overlap");
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(2),
        accept_limit: Some(3),
        fingerprint: Fingerprint::custom("e2e/1"),
        ..ServerConfig::new(&dir)
    };
    let server = config.bind().unwrap();
    let addr = server.local_addr().unwrap().to_string();

    // Both plans contain fft + radix; client A adds fmm, client B adds
    // cholesky. The shared points must simulate exactly once even when
    // the submissions race.
    let req_a = request("fft,radix,fmm");
    let req_b = request("fft,radix,cholesky");

    let (out_a, out_b, out_rerun) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run());
        let addr_a = addr.clone();
        let ra = &req_a;
        let a = scope.spawn(move || {
            let mut bytes = Vec::new();
            let outcome = submit(&addr_a, ra, &mut bytes).unwrap();
            (outcome, bytes)
        });
        let addr_b = addr.clone();
        let rb = &req_b;
        let b = scope.spawn(move || {
            let mut bytes = Vec::new();
            let outcome = submit(&addr_b, rb, &mut bytes).unwrap();
            (outcome, bytes)
        });
        let out_a = a.join().unwrap();
        let out_b = b.join().unwrap();
        // Third connection: resubmit A's plan; the accept limit then
        // stops the server so `handle` joins.
        let mut bytes = Vec::new();
        let outcome = submit(&addr, &req_a, &mut bytes).unwrap();
        handle.join().unwrap();
        (out_a, out_b, (outcome, bytes))
    });

    // Acceptance: streams are byte-identical to the offline sweep.
    assert_eq!(out_a.1, offline_stream(&req_a), "client A stream");
    assert_eq!(out_b.1, offline_stream(&req_b), "client B stream");
    assert_eq!(out_rerun.1, out_a.1, "resubmission replays A's bytes");

    // Acceptance: each shared point simulated exactly once. 3 benches
    // per client, 2 shared: 4 distinct points in total.
    let (a, b) = (out_a.0, out_b.0);
    assert_eq!(a.points, 3);
    assert_eq!(b.points, 3);
    assert_eq!(
        a.executed + b.executed,
        4,
        "fft+radix simulated once, not twice: {a:?} {b:?}"
    );
    assert_eq!(
        a.hits + a.waited + b.hits + b.waited,
        2,
        "the shared points were deduped or cached: {a:?} {b:?}"
    );

    // Acceptance: the resubmission is fully cached.
    assert_eq!(
        out_rerun.0,
        PlanOutcome {
            points: 3,
            hits: 3,
            waited: 0,
            executed: 0,
            failed: 0,
        },
        "second submission: hits == point count, zero executions"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_submissions_get_a_wire_error_and_the_server_survives() {
    let dir = scratch_dir("errors");
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(1),
        accept_limit: Some(2),
        fingerprint: Fingerprint::custom("e2e/2"),
        ..ServerConfig::new(&dir)
    };
    let server = config.bind().unwrap();
    let addr = server.local_addr().unwrap().to_string();

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run());
        // An invalid axis value is rejected over the wire...
        let bad = PlanRequest {
            bench: Some("nonesuch".to_string()),
            ..PlanRequest::new("bad")
        };
        let mut sink = Vec::new();
        let err = submit(&addr, &bad, &mut sink).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("nonesuch"), "{err}");
        assert!(sink.is_empty(), "no records before the error");
        // ...and the server still serves the next client.
        let good = request("fft");
        let outcome = submit(&addr, &good, &mut Vec::new()).unwrap();
        assert_eq!(outcome.points, 1);
        handle.join().unwrap();
    });

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The served stream for a single submission equals the offline sweep
/// even with repeats and a seed override in play.
#[test]
fn seeded_repeat_submissions_match_offline_sweeps() {
    let dir = scratch_dir("seeded");
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(2),
        accept_limit: Some(1),
        fingerprint: Fingerprint::custom("e2e/3"),
        ..ServerConfig::new(&dir)
    };
    let server = config.bind().unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let req = PlanRequest {
        bench: Some("fft".to_string()),
        page: Some("both".to_string()),
        repeat: Some(2),
        seed: Some(42),
        scale: Some("tiny".to_string()),
        ..PlanRequest::new("sweep")
    };
    let bytes = std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run());
        let mut bytes = Vec::new();
        let outcome = submit(&addr, &req, &mut bytes).unwrap();
        handle.join().unwrap();
        assert_eq!(outcome.points, 4, "2 pages × 2 repeats");
        bytes
    });
    assert_eq!(bytes, offline_stream(&req));
    // Sanity: the offline baseline itself is what record_json_line
    // produces per record (guards against an accidentally empty
    // comparison).
    let text = String::from_utf8(bytes).unwrap();
    let plan = req.to_plan().unwrap();
    let records = plan.run_with(&mut [], |_, _, _| {}).unwrap();
    for record in &records {
        assert!(
            text.contains(&record_json_line(record)),
            "{}",
            record.point.label()
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A `"trace": true` submission streams the same record bytes as the
/// untraced plan, reports its server-side trace directory in the
/// summary, and leaves one Perfetto-loadable file per point behind —
/// all without touching the result cache.
#[test]
fn traced_submissions_stream_identical_bytes_and_leave_trace_files() {
    let dir = scratch_dir("traced");
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(1),
        accept_limit: Some(2),
        fingerprint: Fingerprint::custom("e2e/4"),
        ..ServerConfig::new(&dir)
    };
    let server = config.bind().unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let untraced = PlanRequest {
        bench: Some("fft".to_string()),
        power_state: Some("full,pc16-mb8".to_string()),
        scale: Some("tiny".to_string()),
        ..PlanRequest::new("sweep")
    };
    let traced = PlanRequest {
        trace: true,
        ..untraced.clone()
    };

    let (traced_out, untraced_out) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run());
        let mut traced_bytes = Vec::new();
        let report = submit_report(&addr, &traced, &mut traced_bytes).unwrap();
        let mut untraced_bytes = Vec::new();
        let outcome = submit(&addr, &untraced, &mut untraced_bytes).unwrap();
        handle.join().unwrap();
        ((report, traced_bytes), (outcome, untraced_bytes))
    });

    // Tracing is observation-only: the served record stream is
    // byte-identical to the untraced (and offline) one.
    assert_eq!(traced_out.1, untraced_out.1, "traced vs untraced stream");
    assert_eq!(traced_out.1, offline_stream(&traced), "traced vs offline");

    // The traced submission ran fresh — no cache interaction — so the
    // following untraced submission still had to execute everything.
    let report = traced_out.0;
    assert_eq!(report.outcome.points, 2);
    assert_eq!(report.outcome.executed, 2);
    assert_eq!(report.outcome.hits, 0);
    assert_eq!(untraced_out.0.executed, 2, "traced run did not cache");

    // One Perfetto-loadable file per point in the reported directory.
    let trace_dir = PathBuf::from(report.trace_dir.expect("summary carries trace_dir"));
    assert!(trace_dir.starts_with(&dir), "{}", trace_dir.display());
    let mut files: Vec<_> = std::fs::read_dir(&trace_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert_eq!(files.len(), 2, "{files:?}");
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap();
        assert!(text.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"));
        assert!(text.ends_with("\n]}\n"));
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
