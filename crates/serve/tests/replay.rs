//! Golden replay: a cached pass over the tiny `mot3d all` grid must be
//! byte-identical to the cold pass that populated the store — header,
//! records, everything — across a store reopen (simulated restart).

use mot3d_bench::plan::ExperimentPlan;
use mot3d_bench::sink::record_json_line;
use mot3d_bench::ExperimentScale;
use mot3d_mem::dram::DramKind;
use mot3d_serve::{CachedExecutor, Fingerprint, PointOutcome, ResultStore};
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mot3d-replay-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The simulating plans `mot3d all` runs, in its order.
fn all_plans(scale: ExperimentScale) -> Vec<ExperimentPlan> {
    vec![
        ExperimentPlan::fig6(scale),
        ExperimentPlan::fig7(scale),
        ExperimentPlan::fig8_at(scale, DramKind::WideIo),
        ExperimentPlan::fig8_at(scale, DramKind::Weis3d),
        ExperimentPlan::open_page_at(scale, DramKind::OffChipDdr3),
    ]
}

fn run_all(exec: &CachedExecutor, plans: &[ExperimentPlan]) -> (Vec<String>, u64, u64) {
    let mut lines = Vec::new();
    let (mut hits, mut executed) = (0, 0);
    for plan in plans {
        let outcome = exec
            .run_plan(plan, |o| {
                match o {
                    PointOutcome::Record(r) => lines.push(record_json_line(r)),
                    PointOutcome::Failed { label, error } => {
                        panic!("unexpected failure for {label}: {error}")
                    }
                }
                Ok(())
            })
            .expect("plan runs");
        hits += outcome.hits;
        executed += outcome.executed;
    }
    (lines, hits, executed)
}

#[test]
fn cached_replay_of_the_all_grid_is_byte_identical() {
    let dir = scratch_dir("all");
    let plans = all_plans(ExperimentScale::tiny());
    let total: u64 = plans.iter().map(|p| p.len() as u64).sum();

    let exec = CachedExecutor::new(
        ResultStore::open(&dir).unwrap(),
        Fingerprint::current(),
        None,
        Some(16),
    );
    let (cold, cold_hits, cold_exec) = run_all(&exec, &plans);
    // The figures overlap (fig6's Full/200 ns column reappears in
    // fig7, fig8@63's flat rows in the open-page study), so even the
    // cold pass hits on the duplicates — each distinct point simulates
    // exactly once.
    assert_eq!(cold_exec + cold_hits, total);
    assert!(cold_hits > 0, "the all grid has cross-figure duplicates");
    assert_eq!(cold_exec, exec.executed_total(), "distinct points only");
    drop(exec);

    // "Restart": a new executor over the same directory.
    let exec = CachedExecutor::new(
        ResultStore::open(&dir).unwrap(),
        Fingerprint::current(),
        None,
        Some(16),
    );
    let (warm, warm_hits, warm_exec) = run_all(&exec, &plans);
    assert_eq!(warm_hits, total, "hit count equals point count");
    assert_eq!(warm_exec, 0, "the replay executed no simulations");
    assert_eq!(cold.len(), warm.len());
    for (i, (a, b)) in cold.iter().zip(&warm).enumerate() {
        assert_eq!(a, b, "record {i} drifted on replay");
    }

    // A different fingerprint sees a cold cache over the same bytes.
    let foreign = CachedExecutor::new(
        ResultStore::open(&dir).unwrap(),
        Fingerprint::custom("other/1"),
        None,
        Some(16),
    );
    let first = &plans[..1];
    let (_, fhits, fexec) = run_all(&foreign, first);
    assert_eq!(fhits, 0, "fingerprints segregate the store");
    assert_eq!(fexec, first[0].len() as u64);

    std::fs::remove_dir_all(&dir).unwrap();
}
