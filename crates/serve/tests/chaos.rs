//! Chaos suite: deterministic fault injection driving the service's
//! recovery machinery end to end.
//!
//! Everything here is *scheduled* chaos — a [`FaultPlan`] names exact
//! operation indices, so each test pins exact recovery behavior: a
//! poisoned flight is taken over exactly once, a dropped stream is
//! retried to a byte-identical result, a shutdown request drains and
//! flushes. The proptest at the bottom closes the loop: any seed yields
//! a schedule that replays identically.

use mot3d_bench::sink::JsonLinesSink;
use mot3d_serve::client::{self, submit_with_retry};
use mot3d_serve::fault::FAULT_SITES;
use mot3d_serve::{FaultPlan, FaultSite, Faults, Fingerprint, PlanRequest, ServerConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mot3d-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The bytes `mot3d sweep --json` writes for `request`'s plan — the
/// stream every recovered submission must reproduce exactly.
fn offline_stream(request: &PlanRequest) -> Vec<u8> {
    let plan = request.to_plan().unwrap();
    let mut out = Vec::new();
    let mut sink = JsonLinesSink::new(&mut out);
    let records = plan.run_with(&mut [&mut sink], |_, _, _| {}).unwrap();
    assert_eq!(records.len(), plan.len());
    out
}

fn request(benches: &str) -> PlanRequest {
    PlanRequest {
        bench: Some(benches.to_string()),
        dram: Some("63ns".to_string()),
        scale: Some("tiny".to_string()),
        ..PlanRequest::new("sweep")
    }
}

/// The tentpole acceptance test: three clients race the same plan while
/// the very first point execution is shot down. The owner's flight is
/// poisoned, exactly one thread takes over the re-run, and every client
/// still receives the full, byte-identical stream with zero failed
/// records.
#[test]
fn racing_waiters_take_over_a_poisoned_flight_exactly_once() {
    let dir = scratch_dir("takeover");
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(2),
        accept_limit: Some(3),
        fingerprint: Fingerprint::custom("chaos/1"),
        faults: Faults::plan(FaultPlan::new().fail(FaultSite::PointRun, 0)),
        ..ServerConfig::new(&dir)
    };
    let server = config.bind().unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let req = request("fft,radix");
    let points = req.to_plan().unwrap().len() as u64;

    let outcomes = std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run());
        let clients: Vec<_> = (0..3)
            .map(|_| {
                let addr = addr.clone();
                let req = &req;
                scope.spawn(move || {
                    let mut bytes = Vec::new();
                    let outcome = client::submit(&addr, req, &mut bytes).unwrap();
                    (outcome, bytes)
                })
            })
            .collect();
        let outcomes: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        handle.join().unwrap();
        outcomes
    });

    let expected = offline_stream(&req);
    for (i, (outcome, bytes)) in outcomes.iter().enumerate() {
        assert_eq!(outcome.points, points, "client {i}");
        assert_eq!(outcome.failed, 0, "client {i}: the takeover recovered");
        assert_eq!(*bytes, expected, "client {i}: stream is byte-identical");
    }
    // Exactly-once re-execution: `executed` counts attempts, so the
    // one injected failure adds exactly one takeover re-run on top of
    // the per-point executions — never two, never zero.
    let attempts: u64 = outcomes.iter().map(|(o, _)| o.executed).sum();
    assert_eq!(attempts, points + 1, "one poisoning, one takeover");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// A mid-stream socket drop is retried to a byte-identical result: the
/// second record write is replaced by a connection reset, the client's
/// retry policy resubmits, and the replayed stream (now entirely from
/// the cache) matches an uninterrupted offline sweep exactly.
#[test]
fn a_dropped_stream_is_retried_to_a_byte_identical_result() {
    let dir = scratch_dir("retry");
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(1),
        accept_limit: Some(2),
        fingerprint: Fingerprint::custom("chaos/2"),
        faults: Faults::plan(FaultPlan::new().fail(FaultSite::StreamWrite, 1)),
        ..ServerConfig::new(&dir)
    };
    let server = config.bind().unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let req = request("fft,radix");

    let (outcome, bytes) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run());
        let mut bytes = Vec::new();
        let policy = client::RetryPolicy {
            retries: 2,
            backoff: Duration::from_millis(10),
        };
        let outcome = submit_with_retry(&addr, &req, &mut bytes, policy).unwrap();
        handle.join().unwrap();
        (outcome, bytes)
    });

    assert_eq!(bytes, offline_stream(&req), "retried stream drifted");
    assert_eq!(outcome.failed, 0);
    assert_eq!(
        outcome.hits, outcome.points,
        "the retry replays entirely from the cache"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Store-write faults must not fail a submission *or* poison the cache:
/// the results are served uncached, and a later submission (to a fresh
/// server over the same directory) simply re-executes them.
#[test]
fn store_faults_degrade_to_uncached_service() {
    let dir = scratch_dir("store");
    let faulted = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(1),
        accept_limit: Some(1),
        fingerprint: Fingerprint::custom("chaos/3"),
        faults: Faults::plan(
            FaultPlan::new()
                .fail(FaultSite::StoreWrite, 0)
                .fail(FaultSite::StoreWrite, 1),
        ),
        ..ServerConfig::new(&dir)
    };
    let server = faulted.bind().unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let req = request("fft,radix");

    let (outcome, bytes) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run());
        let mut bytes = Vec::new();
        let outcome = client::submit(&addr, &req, &mut bytes).unwrap();
        handle.join().unwrap();
        (outcome, bytes)
    });
    assert_eq!(outcome.failed, 0, "store faults never fail the plan");
    assert_eq!(bytes, offline_stream(&req));

    // Same directory, healthy server: nothing was cached, so the
    // resubmission re-executes (and this time the writes stick).
    let healthy = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(1),
        accept_limit: Some(1),
        fingerprint: Fingerprint::custom("chaos/3"),
        ..ServerConfig::new(&dir)
    };
    let server = healthy.bind().unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let (outcome, bytes) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run());
        let mut bytes = Vec::new();
        let outcome = client::submit(&addr, &req, &mut bytes).unwrap();
        handle.join().unwrap();
        (outcome, bytes)
    });
    assert_eq!(outcome.hits, 0, "faulted writes left no cache entries");
    assert_eq!(outcome.executed, outcome.points);
    assert_eq!(bytes, offline_stream(&req), "uncached != wrong");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The graceful-shutdown contract: a `{"shutdown": true}` control
/// request is acknowledged, the accept loop drains, `run` returns, and
/// the flushed store serves the next server's submissions from cache.
#[test]
fn shutdown_request_drains_and_flushes_the_store() {
    let dir = scratch_dir("shutdown");
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(1),
        fingerprint: Fingerprint::custom("chaos/4"),
        ..ServerConfig::new(&dir)
    };
    let server = config.bind().unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let req = request("fft");

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run());
        let outcome = client::submit(&addr, &req, &mut Vec::new()).unwrap();
        assert_eq!(outcome.executed, outcome.points);
        client::shutdown(&addr).unwrap();
        // `run` returning *is* the drain guarantee — without the
        // shutdown the accept loop (no accept limit here) never exits.
        handle.join().unwrap();
    });

    // The flush made it to disk: a fresh server over the same directory
    // serves the plan entirely from cache.
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(1),
        accept_limit: Some(1),
        fingerprint: Fingerprint::custom("chaos/4"),
        ..ServerConfig::new(&dir)
    };
    let server = config.bind().unwrap();
    let addr = server.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run());
        let outcome = client::submit(&addr, &req, &mut Vec::new()).unwrap();
        handle.join().unwrap();
        assert_eq!(outcome.hits, outcome.points, "the shutdown flushed");
    });

    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    /// Any seed yields a deterministic, replayable schedule: the same
    /// `(seed, horizon, per_site)` triple always derives the same
    /// sorted in-bounds indices, and *replaying* the plan — consuming
    /// `horizon` operations per site — fires exactly at those indices,
    /// both times.
    #[test]
    fn any_fault_seed_replays_identically(
        seed in 0u64..=u64::MAX,
        horizon in 1u64..=64,
        per_site in 0usize..=8,
    ) {
        let plan = FaultPlan::from_seed(seed, horizon, per_site);
        let again = FaultPlan::from_seed(seed, horizon, per_site);
        for site in FAULT_SITES {
            assert_eq!(plan.schedule(site), again.schedule(site));
            assert!(plan.schedule(site).len() <= per_site);
            assert!(plan.schedule(site).iter().all(|&i| i < horizon));
            assert!(plan.schedule(site).windows(2).all(|w| w[0] < w[1]));
            // Replay: ops fire exactly at the scheduled indices (the
            // loop index is the op index — one op consumed per pass).
            let expected: Vec<u64> = plan.schedule(site).to_vec();
            let fired: Vec<u64> = (0..horizon)
                .filter(|_| plan.should_fail(site))
                .collect();
            assert_eq!(fired, expected, "schedule drifted at {site:?}");
            // `again` is an untouched copy of the same schedule, so a
            // second replay fires identically.
            let refired: Vec<u64> = (0..horizon)
                .filter(|_| again.should_fail(site))
                .collect();
            assert_eq!(fired, refired, "replay drifted at {site:?}");
        }
    }
}
