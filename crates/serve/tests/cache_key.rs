//! Cache-key contract tests: the key is stable across process restarts
//! (pinned golden value), moves when any sweep axis moves, and moves
//! when the fingerprint moves.

use mot3d_bench::plan::{ExperimentPlan, RunPoint};
use mot3d_bench::ExperimentScale;
use mot3d_mem::dram::DramKind;
use mot3d_mot::PowerState;
use mot3d_serve::{cache_key, CacheKey, Fingerprint};
use mot3d_workloads::SplashBenchmark;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The canonical reference point: `fft` on the defaults (MoT 3-D, Full,
/// 200 ns DRAM, flat pages) at the pinned tiny scale.
fn reference_point() -> RunPoint {
    let points = ExperimentPlan::new("key")
        .splash([SplashBenchmark::Fft])
        .scale(ExperimentScale::tiny())
        .points();
    assert_eq!(points.len(), 1);
    points.into_iter().next().unwrap()
}

/// The key of plan point 0 under the test fingerprint.
fn key_of(plan: ExperimentPlan) -> CacheKey {
    let fp = Fingerprint::custom("test/1");
    cache_key(&fp, plan.points().first().expect("non-empty plan"))
}

fn base_plan() -> ExperimentPlan {
    ExperimentPlan::new("key")
        .splash([SplashBenchmark::Fft])
        .scale(ExperimentScale::tiny())
}

/// A fresh server process must locate results written by a previous
/// one, so the key for a fixed point is pinned for schema 1: this value
/// was computed once and must never drift within a fingerprint. (An
/// *intentional* hash change is fine — it reads as a cache miss — but
/// must come with a [`Fingerprint`] schema bump, not silently.)
#[test]
fn reference_key_is_pinned_across_restarts() {
    let key = cache_key(&Fingerprint::custom("test/1"), &reference_point());
    let recomputed = cache_key(&Fingerprint::custom("test/1"), &reference_point());
    assert_eq!(key, recomputed, "key computation is deterministic");
    assert_eq!(key, CacheKey::from_hex(&key.to_hex()).unwrap());
    let pinned = "2a11a4c7ddf124bc4808ccdf2f05523b";
    assert_eq!(key.to_hex(), pinned, "schema-1 key drifted");
}

/// Every sweep axis must move the key: two points that differ anywhere
/// must never collide on purpose.
#[test]
fn each_axis_moves_the_key() {
    let base = key_of(base_plan());
    let mut keys = BTreeSet::new();
    assert!(keys.insert(base), "base");
    assert!(
        keys.insert(key_of(base_plan().splash([SplashBenchmark::Radix]))),
        "workload"
    );
    let mesh = mot3d_bench::axes::parse_interconnects("mesh").unwrap();
    assert!(
        keys.insert(key_of(base_plan().interconnects(mesh))),
        "interconnect"
    );
    assert!(
        keys.insert(key_of(base_plan().power_states([PowerState::pc4_mb8()]))),
        "power state"
    );
    assert!(
        keys.insert(key_of(base_plan().drams([DramKind::WideIo]))),
        "dram"
    );
    assert!(
        keys.insert(key_of(base_plan().page_policies([true]))),
        "page policy"
    );
    let repeats: Vec<CacheKey> = {
        let fp = Fingerprint::custom("test/1");
        base_plan()
            .repeats(2)
            .points()
            .iter()
            .map(|p| cache_key(&fp, p))
            .collect()
    };
    assert_eq!(repeats[0], base, "repeat 0 is the canonical seed");
    assert!(keys.insert(repeats[1]), "repeat 1 is its own key");
}

/// The fingerprint segregates stores across code/schema revisions.
#[test]
fn fingerprint_moves_the_key() {
    let point = reference_point();
    let a = cache_key(&Fingerprint::custom("test/1"), &point);
    let b = cache_key(&Fingerprint::custom("test/2"), &point);
    let c = cache_key(&Fingerprint::current(), &point);
    assert_ne!(a, b);
    assert_ne!(a, c);
    assert_ne!(b, c);
}

proptest! {
    /// Scale and seed both feed the key: across a grid of (scale, seed)
    /// pairs every key is distinct, and recomputing any of them is
    /// stable.
    #[test]
    fn scale_and_seed_feed_the_key(
        scale_milli in 1u32..=64,
        seed in 0u64..=1024,
    ) {
        let scale = ExperimentScale {
            scale: f64::from(scale_milli) / 1000.0,
            seed,
        };
        let plan = || {
            ExperimentPlan::new("key")
                .splash([SplashBenchmark::Fft])
                .scale(scale)
        };
        let key = key_of(plan());
        prop_assert_eq!(key, key_of(plan()), "stable");
        let other_seed = ExperimentScale {
            seed: seed + 1,
            ..scale
        };
        prop_assert_ne!(key, key_of(plan().scale(other_seed)), "seed feeds key");
        let other_scale = ExperimentScale {
            scale: scale.scale * 2.0,
            ..scale
        };
        prop_assert_ne!(
            key,
            key_of(plan().scale(other_scale)),
            "scale feeds key (via the scaled workload spec)"
        );
    }
}
