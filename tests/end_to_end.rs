//! Cross-crate end-to-end tests: the full stack from physical models to
//! simulated benchmarks behaves as the paper describes.

use mot3d::prelude::*;

/// Small but meaningful run length for CI.
const SCALE: f64 = 0.01;

#[test]
fn table1_latencies_reproduce_exactly() {
    let expect = [
        (PowerState::full(), 12),
        (PowerState::pc16_mb8(), 9),
        (PowerState::pc4_mb32(), 9),
        (PowerState::pc4_mb8(), 7),
    ];
    for (state, cycles) in expect {
        let net = MotNetwork::date16(state).unwrap();
        assert_eq!(net.latency().round_trip(), cycles, "{state}");
    }
}

#[test]
fn table1_leakage_orders_monotonically_with_gating() {
    // Table I regression: the paper's headline latencies pinned exactly,
    // plus the leakage ordering that makes power gating worthwhile. Every
    // partial state must leak strictly less than Full connection and
    // strictly more than the deepest state, and gating more components
    // must never increase leakage.
    let full = MotNetwork::date16(PowerState::full()).unwrap();
    let pc16_mb8 = MotNetwork::date16(PowerState::pc16_mb8()).unwrap();
    let pc4_mb32 = MotNetwork::date16(PowerState::pc4_mb32()).unwrap();
    let pc4_mb8 = MotNetwork::date16(PowerState::pc4_mb8()).unwrap();

    assert_eq!(full.latency().round_trip(), 12);
    assert_eq!(pc4_mb8.latency().round_trip(), 7);

    // Gating 24 of 32 banks removes more interconnect than gating 12 of
    // 16 cores, so PC16-MB8 sits below PC4-MB32; both sit strictly
    // between the extremes.
    let (w_full, w_mb8, w_pc4, w_both) = (
        full.leakage_power(),
        pc16_mb8.leakage_power(),
        pc4_mb32.leakage_power(),
        pc4_mb8.leakage_power(),
    );
    assert!(
        w_both.value() > 0.0,
        "deepest state still leaks: {w_both:?}"
    );
    assert!(
        w_full > w_pc4 && w_pc4 > w_mb8 && w_mb8 > w_both,
        "leakage must fall monotonically with gating: \
         full={w_full:?} pc4_mb32={w_pc4:?} pc16_mb8={w_mb8:?} pc4_mb8={w_both:?}"
    );
}

#[test]
fn every_interconnect_runs_every_benchmark() {
    for bench in SplashBenchmark::all() {
        for ic in [
            InterconnectChoice::Mot,
            InterconnectChoice::Noc(NocTopologyKind::Mesh3d),
            InterconnectChoice::Noc(NocTopologyKind::HybridBusMesh),
            InterconnectChoice::Noc(NocTopologyKind::HybridBusTree),
        ] {
            let m = run_benchmark(bench, 0.002, &SimConfig::date16().with_interconnect(ic))
                .unwrap_or_else(|e| panic!("{bench} on {ic}: {e}"));
            assert!(m.cycles > 0, "{bench} on {ic}");
            assert!(m.instructions > 0);
            assert!(m.energy.cluster().value() > 0.0);
        }
    }
}

#[test]
fn every_power_state_runs_with_golden_checks() {
    for state in PowerState::date16_states() {
        let mut cfg = SimConfig::date16().with_power_state(state);
        cfg.check_golden = true;
        let m = run_benchmark(SplashBenchmark::Volrend, SCALE, &cfg)
            .unwrap_or_else(|e| panic!("{state}: {e}"));
        assert!(m.cycles > 0, "{state}");
    }
}

#[test]
fn full_stack_is_deterministic() {
    let cfg = SimConfig::date16();
    let a = run_benchmark(SplashBenchmark::Raytrace, SCALE, &cfg).unwrap();
    let b = run_benchmark(SplashBenchmark::Raytrace, SCALE, &cfg).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.l1_misses, b.l1_misses);
    assert_eq!(a.l2_misses, b.l2_misses);
    assert_eq!(a.dram_accesses, b.dram_accesses);
    assert_eq!(a.energy, b.energy);
}

#[test]
fn mot_outperforms_every_packet_switched_baseline() {
    // Fig. 6's qualitative claim on a memory-heavy program.
    let bench = SplashBenchmark::Radix;
    let mot = run_benchmark(bench, SCALE, &SimConfig::date16()).unwrap();
    for kind in NocTopologyKind::all() {
        let noc = run_benchmark(
            bench,
            SCALE,
            &SimConfig::date16().with_interconnect(InterconnectChoice::Noc(kind)),
        )
        .unwrap();
        assert!(
            mot.cycles < noc.cycles,
            "{kind}: MoT {} vs {} cycles",
            mot.cycles,
            noc.cycles
        );
        assert!(
            mot.l2_latency.mean() < noc.l2_latency.mean(),
            "{kind}: L2 latency"
        );
    }
}

#[test]
fn pc4_mb8_cuts_edp_on_a_poorly_scaling_program() {
    // Fig. 7(a)'s qualitative claim. fft has a large serial fraction, so
    // 4 cores cost little time and save much energy.
    let bench = SplashBenchmark::Fft;
    let full = run_benchmark(bench, SCALE, &SimConfig::date16()).unwrap();
    let gated = run_benchmark(
        bench,
        SCALE,
        &SimConfig::date16().with_power_state(PowerState::pc4_mb8()),
    )
    .unwrap();
    assert!(
        gated.edp().value() < full.edp().value() * 0.85,
        "PC4-MB8 must cut fft's EDP by >15%: {} vs {}",
        gated.edp().value(),
        full.edp().value()
    );
}

#[test]
fn pc4_hurts_a_scalable_program() {
    // The flip side that makes reconfigurability necessary.
    let bench = SplashBenchmark::OceanContiguous;
    let full = run_benchmark(bench, SCALE, &SimConfig::date16()).unwrap();
    let gated = run_benchmark(
        bench,
        SCALE,
        &SimConfig::date16().with_power_state(PowerState::pc4_mb32()),
    )
    .unwrap();
    assert!(
        gated.edp().value() > full.edp().value(),
        "PC4 must hurt ocean's EDP: {} vs {}",
        gated.edp().value(),
        full.edp().value()
    );
    assert!(gated.cycles > full.cycles * 2, "and slow it down a lot");
}

#[test]
fn faster_dram_amplifies_bank_gating_benefit() {
    // Fig. 8's trend on one benchmark: EDP ratio (PC16-MB8 / Full) drops
    // as DRAM latency drops.
    let bench = SplashBenchmark::Volrend;
    let mut ratios = Vec::new();
    for dram in [DramKind::OffChipDdr3, DramKind::WideIo, DramKind::Weis3d] {
        let cfg = SimConfig::date16().with_dram(dram);
        let full = run_benchmark(bench, SCALE, &cfg).unwrap();
        let gated =
            run_benchmark(bench, SCALE, &cfg.with_power_state(PowerState::pc16_mb8())).unwrap();
        ratios.push(gated.edp().value() / full.edp().value());
    }
    assert!(
        ratios[2] <= ratios[0] + 1e-9,
        "gating payoff must not shrink with faster DRAM: {ratios:?}"
    );
}

#[test]
fn energy_breakdown_components_are_all_populated() {
    let m = run_benchmark(SplashBenchmark::Fmm, SCALE, &SimConfig::date16()).unwrap();
    assert!(m.energy.cores.value() > 0.0);
    assert!(m.energy.l1.value() > 0.0);
    assert!(m.energy.l2.value() > 0.0);
    assert!(m.energy.interconnect.value() > 0.0);
    assert!(m.energy.dram.value() > 0.0);
    // Cluster EDP excludes DRAM (the paper's definition).
    assert!(m.energy.edp_with_dram(m.exec_time) > m.edp());
}

#[test]
fn prelude_covers_the_common_workflow() {
    // The quickstart path compiles and runs through the prelude alone.
    let tech = Technology::lp45();
    assert_eq!(tech.clock.ghz(), 1.0);
    let fp = Floorplan::date16();
    assert_eq!(fp.total_banks, 32);
    let spec: WorkloadSpec = SplashBenchmark::WaterNsquared.spec().scaled(0.001);
    let m = run_spec(&spec, &SimConfig::date16()).unwrap();
    assert!(m.ipc() > 0.0);
}
