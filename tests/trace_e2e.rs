//! Whole-workspace trace check: run a tiny benchmark through
//! `trace_spec`, then parse the emitted file with the workspace's own
//! JSON parser and verify it is one valid document carrying every track
//! family the tracer promises — the "Perfetto-loadable" acceptance
//! criterion, checked structurally rather than by eye.

use mot3d::prelude::*;
use mot3d::trace::trace_spec;
use mot3d_serve::json::{self, JsonValue};
use std::path::PathBuf;

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mot3d-trace-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Collects the `args.name` of every `ph: "M"` metadata event whose
/// `name` is `kind` (`process_name` or `thread_name`).
fn metadata_names(events: &[JsonValue], kind: &str) -> Vec<String> {
    events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
        .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some(kind))
        .filter_map(|e| e.get("args")?.get("name")?.as_str().map(String::from))
        .collect()
}

#[test]
fn traced_run_emits_one_valid_document_with_every_track_family() {
    let dir = scratch_dir();
    let path = dir.join("fft.trace.json");
    let spec = SplashBenchmark::Fft.spec().scaled(0.002);
    let config = SimConfig::date16();
    let (metrics, summary) = trace_spec(&spec, &config, &path).unwrap();

    // The traced run is a real run...
    assert!(metrics.cycles > 0);
    assert_eq!(summary.path, path);

    // ...and the file is a single valid JSON document.
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = json::parse(&text).unwrap();
    assert_eq!(
        doc.get("displayTimeUnit").and_then(JsonValue::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len() as u64, summary.events);

    // Every promised track family is declared via metadata events.
    let processes = metadata_names(events, "process_name");
    for family in [
        "cores",
        "l2-banks",
        "interconnect",
        "miss-bus",
        "dram",
        "counters",
    ] {
        assert!(
            processes.iter().any(|p| p.contains(family)),
            "missing process track {family:?} in {processes:?}"
        );
    }
    let threads = metadata_names(events, "thread_name");
    for track in ["core 0", "core 15", "bank 0", "L2 hit rate", "row buffer"] {
        assert!(
            threads.iter().any(|t| t.contains(track)),
            "missing thread track {track:?}"
        );
    }

    // Span and counter events are well-formed: every B/E/C carries a
    // numeric timestamp, and counters carry a numeric value.
    let mut spans = 0usize;
    let mut counters = 0usize;
    for e in events {
        match e.get("ph").and_then(JsonValue::as_str) {
            Some("B") | Some("E") => {
                assert!(e.get("ts").and_then(JsonValue::as_u64).is_some(), "{e:?}");
                spans += 1;
            }
            Some("C") => {
                assert!(e.get("ts").and_then(JsonValue::as_u64).is_some(), "{e:?}");
                let value = e.get("args").and_then(|a| a.get("value"));
                assert!(value.and_then(JsonValue::num_text).is_some(), "{e:?}");
                counters += 1;
            }
            Some("M") => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(spans > 0, "no span events");
    assert!(counters > 0, "no counter events");

    std::fs::remove_dir_all(&dir).unwrap();
}
