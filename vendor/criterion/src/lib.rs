//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build environment for this workspace has no crates.io access, so this
//! crate vendors the subset of the criterion API the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple — a warm-up pass sizes the batch, then
//! a fixed wall-clock budget measures mean ns/iter. Good enough to spot
//! order-of-magnitude regressions; not a statistics engine.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times one closure over repeated calls (see [`Criterion::bench_function`]).
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly inside the measurement budget, recording
    /// total iterations and elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one call, also sizes the batch so cheap routines are
        // timed in bulk and expensive ones are not over-run.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        while start.elapsed() < self.budget {
            for _ in 0..batch {
                black_box(routine());
            }
            self.iters_done += batch;
        }
        self.elapsed = start.elapsed();
    }
}

/// Entry point handed to each bench target (shim of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs `f` with a [`Bencher`] and prints a one-line mean-time report.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let id = id.as_ref();
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            budget: self.budget,
        };
        f(&mut b);
        if b.iters_done > 0 {
            let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
            println!(
                "{id:<48} {ns_per_iter:>14.1} ns/iter ({} iters)",
                b.iters_done
            );
        } else {
            println!("{id:<48} (no measurement)");
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named set of related benchmarks (shim of `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed time budget makes
    /// the statistical sample count irrelevant.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` with a [`Bencher`], reporting under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.parent.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles bench functions into a group runner (shim of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` invoking each bench group (shim of criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
