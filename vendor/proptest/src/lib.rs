//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment for this workspace has no crates.io access, so this
//! crate vendors the (small) subset of the proptest API that the workspace's
//! property tests actually use: the [`Strategy`] trait with `prop_map` and
//! `boxed`, range / tuple / [`Just`] / [`collection::vec`](prop::collection::vec)
//! strategies, the `proptest!`, `prop_assert!`, `prop_assert_eq!` and
//! `prop_oneof!` macros, and a deterministic [`test_runner::TestRunner`].
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its case index and seed so it
//!   can be replayed, but is not minimised;
//! * **deterministic by default** — the RNG seed is fixed (override with
//!   `PROPTEST_SEED`), so CI runs are reproducible;
//! * default case count is 64 (override with `PROPTEST_CASES`).

#![warn(missing_docs)]

pub mod test_runner {
    //! Test-runner configuration, errors and the case-driving loop.

    /// Why a single generated test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed; the property is falsified.
        Fail(String),
        /// The inputs were rejected (e.g. by `prop_assume!`); try another case.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected test case with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Runner configuration (`ProptestConfig` in real proptest).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases each property must pass.
        pub cases: u32,
        /// Maximum number of rejected cases tolerated before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Config {
                cases,
                max_global_rejects: 1024,
            }
        }
    }

    /// Deterministic xoshiro256**-based generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator from `seed` via splitmix64.
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// A uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Rejection-free modulo is fine for test generation purposes.
            self.next_u64() % bound
        }

        /// A uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives a property over `config.cases` generated cases.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
        base_seed: u64,
    }

    impl TestRunner {
        /// A runner with the given configuration and the ambient seed
        /// (`PROPTEST_SEED`, defaulting to a fixed constant).
        pub fn new(config: Config) -> Self {
            let base_seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x3D0C_8E2A_F1D4_5EB7);
            TestRunner { config, base_seed }
        }

        /// Runs `case` once per configured case, panicking (so the libtest
        /// harness reports a failure) on the first falsified case.
        pub fn run<F>(&mut self, name: &str, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                name_hash = (name_hash ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut rejects = 0u32;
            let mut passed = 0u32;
            let mut case_idx = 0u64;
            while passed < self.config.cases {
                let seed =
                    self.base_seed ^ name_hash ^ case_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = TestRng::from_seed(seed);
                match case(&mut rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects > self.config.max_global_rejects {
                            panic!(
                                "proptest {name}: too many rejected cases ({rejects}) \
                                 after {passed} passing cases"
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {name}: falsified at case {case_idx} \
                             (replay with PROPTEST_SEED={} )\n{msg}",
                            self.base_seed
                        );
                    }
                }
                case_idx += 1;
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators this workspace uses.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree / shrinking; a strategy
    /// simply draws a value from the RNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy (returned by [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> std::fmt::Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy(..)")
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Picks one of its component strategies uniformly per case
    /// (the engine behind `prop_oneof!`).
    #[derive(Debug)]
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given (non-empty) set of strategies.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Integer / float types that can be drawn uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Uniform draw from `[lo, hi)`.
        fn sample_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 as u64;
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
            assert!(lo < hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl SampleUniform for f32 {
        fn sample_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
            assert!(lo < hi, "empty range strategy");
            lo + (rng.unit_f64() as f32) * (hi - lo)
        }
    }

    impl<T: SampleUniform + Copy> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_range(rng, self.start, self.end)
        }
    }

    macro_rules! impl_range_inclusive {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    if lo == <$t>::MIN && hi == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (hi as i128 - lo as i128 + 1) as u128 as u64;
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// The strategy type returned by [`any`].
        type Strategy: Strategy<Value = Self>;
        /// The canonical full-domain strategy for `Self`.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` — `any::<bool>()` and friends.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-domain strategy for a primitive type (see [`Arbitrary`]).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(std::marker::PhantomData)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec length range");
        VecStrategy { element, len: size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample::select`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing one element of a fixed set (see [`select`]).
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Picks one of `options` uniformly per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty set");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].clone()
        }
    }
}

pub mod prelude {
    //! One-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
///
/// An optional leading `#![proptest_config(expr)]` sets the runner
/// configuration for every property in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run(stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), left, right
        );
    }};
}

/// Fails the current test case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "{}\n  both: {:?}", format!($($fmt)+), left);
    }};
}

/// Rejects the current test case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
