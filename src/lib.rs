//! # mot3d — reproduction of the DATE 2016 power-efficient 3-D MoT interconnect
//!
//! A full reimplementation of *"A Power-Efficient 3-D On-Chip Interconnect
//! for Multi-Core Accelerators with Stacked L2 Cache"* (Kang, Park, Lee,
//! Benini, De Micheli — DATE 2016): the reconfigurable circuit-switched
//! 3-D Mesh-of-Tree interconnect, the three packet-switched baselines it
//! is compared against, the multicore cluster simulator and memory
//! hierarchy that evaluate them, the physical (Elmore/TSV/CACTI/McPAT
//! style) models behind every latency and energy number, and the
//! SPLASH-2-inspired workloads that drive the experiments.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`phys`] — units, technology, RC/Elmore, TSV, SRAM, floorplan, power;
//! * [`mot`] — the paper's contribution: the reconfigurable 3-D MoT;
//! * [`noc`] — True 3-D Mesh, Hybrid Bus-Mesh, Hybrid Bus-Tree baselines;
//! * [`mem`] — caches, MSI directory, Miss bus, DRAM, golden memory;
//! * [`sim`] — the cluster simulator (Graphite substitute);
//! * [`workloads`] — the eight SPLASH-2-style programs;
//! * [`trace`] — Perfetto-loadable timeline tracing, zero-cost when off.
//!
//! # Quickstart
//!
//! ```
//! use mot3d::prelude::*;
//!
//! // Table I, derived from physics: 12-cycle L2 round trip at Full
//! // connection, 7 cycles in the deepest power-gated state.
//! let full = MotNetwork::date16(PowerState::full())?;
//! let gated = MotNetwork::date16(PowerState::pc4_mb8())?;
//! assert_eq!(full.latency().round_trip(), 12);
//! assert_eq!(gated.latency().round_trip(), 7);
//!
//! // Run a (scaled-down) SPLASH-2-style program on the simulated cluster.
//! let metrics = run_benchmark(SplashBenchmark::Fft, 0.002, &SimConfig::date16())?;
//! assert!(metrics.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use mot3d_mem as mem;
pub use mot3d_mot as mot;
pub use mot3d_noc as noc;
pub use mot3d_phys as phys;
pub use mot3d_sim as sim;
pub use mot3d_trace as trace;
pub use mot3d_workloads as workloads;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use mot3d_mem::dram::DramKind;
    pub use mot3d_mot::latency::MotLatency;
    pub use mot3d_mot::power_state::PowerState;
    pub use mot3d_mot::traits::Interconnect;
    pub use mot3d_mot::{MotError, MotNetwork};
    pub use mot3d_noc::{NocNetwork, NocTopologyKind};
    pub use mot3d_phys::geometry::Floorplan;
    pub use mot3d_phys::Technology;
    pub use mot3d_sim::{
        run_benchmark, run_source, run_spec, Cluster, InterconnectChoice, Metrics, SimConfig,
        SimError,
    };
    pub use mot3d_workloads::{SplashBenchmark, WorkloadSource, WorkloadSpec};
}
