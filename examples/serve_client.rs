//! Sweep service round trip, in process: start `mot3d serve` on an
//! ephemeral port, submit the same tiny plan twice, and show the second
//! submission coming back entirely from the result cache.
//!
//! ```text
//! cargo run --example serve_client
//! ```
//!
//! The equivalent over the CLI (two shells):
//!
//! ```text
//! mot3d serve --addr 127.0.0.1:4016 --cache-dir /tmp/mot3d-cache
//! mot3d submit --bench fft --dram all --scale tiny > grid.jsonl
//! ```

use mot3d_serve::{CachedExecutor, Fingerprint, PlanRequest, PointOutcome, ResultStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = std::env::temp_dir().join(format!("mot3d-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);

    // The serving core, in process (the TCP layer adds nothing to the
    // caching story): a persistent store plus the cached executor.
    let exec = CachedExecutor::new(
        ResultStore::open(&cache)?,
        Fingerprint::current(),
        None,
        Some(32),
    );

    // The same request `mot3d submit --bench fft --dram all --scale
    // tiny` would put on the wire.
    let request = PlanRequest {
        bench: Some("fft".to_string()),
        dram: Some("all".to_string()),
        scale: Some("tiny".to_string()),
        ..PlanRequest::new("sweep")
    };
    let plan = request.to_plan()?;

    println!("cold pass ({} points):", plan.len());
    let cold = exec.run_plan(&plan, |outcome| {
        match outcome {
            PointOutcome::Record(record) => {
                println!("  {}", mot3d_bench::sink::record_json_line(record));
            }
            PointOutcome::Failed { label, error } => {
                println!("  FAILED {label}: {error}");
            }
        }
        Ok(())
    })?;
    println!(
        "  -> {} executed, {} cache hits\n",
        cold.executed, cold.hits
    );

    println!("warm pass (same plan):");
    let warm = exec.run_plan(&plan, |_| Ok(()))?;
    println!("  -> {} executed, {} cache hits", warm.executed, warm.hits);
    assert_eq!(warm.executed, 0, "everything came from the store");
    assert_eq!(warm.hits, warm.points);

    // The store survives restarts: reopen it and hit again.
    drop(exec);
    let reopened = CachedExecutor::new(
        ResultStore::open(&cache)?,
        Fingerprint::current(),
        None,
        Some(32),
    );
    let replay = reopened.run_plan(&plan, |_| Ok(()))?;
    println!(
        "after reopen: {} executed, {} cache hits",
        replay.executed, replay.hits
    );
    assert_eq!(replay.executed, 0);

    std::fs::remove_dir_all(&cache)?;
    Ok(())
}
