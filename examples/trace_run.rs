//! Timeline tracing walkthrough: run one benchmark with the tracer
//! attached and emit a Perfetto-loadable Chrome JSON trace.
//!
//! ```text
//! cargo run --example trace_run
//! ```
//!
//! Then open the printed file at <https://ui.perfetto.dev> (or
//! `chrome://tracing`): core state spans, per-bank L2 occupancy, MoT
//! level activity, Miss-bus depth, DRAM row phases, and counter tracks,
//! all stamped with *simulated* cycles (1 cycle displays as 1 µs).

use mot3d::prelude::*;
use mot3d::trace::{trace_file_name, trace_spec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Trace the deepest power-gated state: the central fold is visible
    // in the trace as 24 of the 32 bank tracks flat-lining at "(gated)".
    let config = SimConfig::date16().with_power_state(PowerState::pc16_mb8());
    let spec = SplashBenchmark::Fft.spec().scaled(0.002);

    let path = trace_file_name("fft @ 3-D MoT @ PC16-MB8 @ 200ns");
    let (metrics, summary) = trace_spec(&spec, &config, &path)?;

    println!(
        "traced {} cycles (IPC {:.3}): {} events -> {}",
        metrics.cycles,
        metrics.ipc(),
        summary.events,
        summary.path.display()
    );
    println!("open it at https://ui.perfetto.dev");

    // The zero-cost-when-off guarantee, demonstrated: the traced run's
    // metrics equal an untraced run of the same point, bit for bit.
    let untraced = run_spec(&spec, &config)?;
    assert_eq!(metrics, untraced, "tracing is observation-only");
    println!("metrics match the untraced run exactly");
    Ok(())
}
