//! How Table I's 12/9/9/7 cycles fall out of the physics: walk the
//! Elmore/repeated-wire/TSV derivation term by term.
//!
//! ```text
//! cargo run --example derive_latency
//! ```

use mot3d::mot::latency::{MotLatency, MotTimingParams};
use mot3d::mot::topology::MotTopology;
use mot3d::phys::rc::{optimal_segment_length, RepeatedWire};
use mot3d::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::lp45();
    let fp = Floorplan::date16();
    let topo = MotTopology::date16();
    let params = MotTimingParams::default();

    println!("node: {} at {:.1} GHz", tech.name, tech.clock.ghz());
    println!(
        "repeated wire: {:.0} µm repeater spacing, {:.3} ns/mm",
        optimal_segment_length(&tech).um(),
        RepeatedWire::new(&tech, mot3d::phys::units::Meters::from_mm(1.0))
            .delay()
            .ns()
    );
    println!();

    for state in PowerState::date16_states() {
        let path = fp.longest_path(state.active_cores(), state.active_banks())?;
        let wire = RepeatedWire::new(&tech, path.horizontal);
        let tsv = fp
            .tsv
            .hop_delay_with_driver(&tech, path.vertical_hops, params.tsv_driver);
        let lat = MotLatency::derive(&tech, &fp, topo, &params, state)?;

        println!("{state}:");
        println!(
            "  longest link: {:.2} mm horizontal + {} TSV hop(s) ({:.0} µm)",
            path.horizontal.mm(),
            path.vertical_hops,
            path.vertical.um()
        );
        println!(
            "  wire {:.2} ns ({} repeaters) + switches {:.2} ns + TSV {:.2} ns",
            wire.delay().ns(),
            wire.repeater_count(),
            (tech.switch.routing_switch_delay + tech.switch.reconfig_mux_delay).ns()
                * topo.routing_levels() as f64
                + tech.switch.arbitration_switch_delay.ns()
                    * (state.active_cores().trailing_zeros() as f64),
            tsv.ns(),
        );
        println!(
            "  → request {} + bank {} + response {} = {} cycles (Table I)",
            lat.request_cycles,
            lat.bank_cycles,
            lat.response_cycles,
            lat.round_trip()
        );
    }
    Ok(())
}
