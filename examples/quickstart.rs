//! Quickstart: build the paper's cluster, check Table I, run a program.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mot3d::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The reconfigurable 3-D MoT, derived from physics -----------
    println!("Derived L2 access latencies (Table I):");
    for state in mot3d::mot::power_state::PowerState::date16_states() {
        let net = MotNetwork::date16(state)?;
        println!(
            "  {:<16} {:>2} cycles round trip, {:>6.2} mW interconnect leakage",
            state.to_string(),
            net.latency().round_trip(),
            net.leakage_power().mw(),
        );
    }

    // --- 2. Run a SPLASH-2-style program on the simulated cluster ------
    // Scale 0.05 ≈ 80 k instructions: a second or two in debug builds.
    let config = SimConfig::date16();
    let metrics = run_benchmark(SplashBenchmark::Fft, 0.05, &config)?;
    println!("\nfft on the 3-D MoT (Full connection, 200 ns DRAM):");
    println!("  cycles          : {}", metrics.cycles);
    println!("  instructions    : {}", metrics.instructions);
    println!("  IPC             : {:.3}", metrics.ipc());
    println!(
        "  L1 miss ratio   : {:.1}%",
        100.0 * metrics.l1_miss_ratio()
    );
    println!(
        "  L2 miss ratio   : {:.1}%",
        100.0 * metrics.l2_miss_ratio()
    );
    println!(
        "  mean L2 latency : {:.1} cycles",
        metrics.l2_latency.mean()
    );
    println!(
        "  cluster energy  : {:.3} mJ",
        metrics.energy.cluster().mj()
    );
    println!("  EDP             : {:.3e} J·s", metrics.edp().value());

    // --- 3. Compare against a power-gated state ------------------------
    let gated = run_benchmark(
        SplashBenchmark::Fft,
        0.05,
        &config.with_power_state(PowerState::pc4_mb8()),
    )?;
    println!("\nfft again in PC4-MB8 (4 cores, 8 banks):");
    println!(
        "  cycles          : {} ({:+.1}%)",
        gated.cycles,
        100.0 * (gated.cycles as f64 / metrics.cycles as f64 - 1.0)
    );
    println!(
        "  EDP             : {:.3e} J·s ({:+.1}%)",
        gated.edp().value(),
        100.0 * (gated.edp().value() / metrics.edp().value() - 1.0)
    );
    println!("\nfft scales poorly, so trading 12 cores for a 44% EDP cut is the");
    println!("paper's headline: the right power state depends on the program.");
    Ok(())
}
