//! Fig. 6 in miniature: one memory-heavy program on all four 3-D
//! interconnects.
//!
//! ```text
//! cargo run --release --example interconnect_comparison
//! ```

use mot3d::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = SplashBenchmark::Radix; // the most memory-intensive program
    let scale = 0.02;
    let interconnects = [
        InterconnectChoice::Noc(NocTopologyKind::Mesh3d),
        InterconnectChoice::Noc(NocTopologyKind::HybridBusMesh),
        InterconnectChoice::Noc(NocTopologyKind::HybridBusTree),
        InterconnectChoice::Mot,
    ];

    println!("{bench} across the four 3-D interconnects (Full connection, 200 ns DRAM):");
    println!(
        "{:<22} {:>10} {:>14} {:>16}",
        "interconnect", "cycles", "mean L2 (cyc)", "net energy (µJ)"
    );
    let mut baseline = None;
    for ic in interconnects {
        let m = run_benchmark(bench, scale, &SimConfig::date16().with_interconnect(ic))?;
        let vs = match baseline {
            None => {
                baseline = Some(m.cycles);
                String::new()
            }
            Some(base) => format!(
                "  ({:+.1}% vs mesh)",
                100.0 * (m.cycles as f64 / base as f64 - 1.0)
            ),
        };
        println!(
            "{:<22} {:>10} {:>14.1} {:>16.2}{vs}",
            ic.to_string(),
            m.cycles,
            m.l2_latency.mean(),
            m.energy.interconnect.value() * 1e6,
        );
    }
    println!();
    println!("The circuit-switched MoT avoids hop-by-hop packet relaying entirely:");
    println!("one arbitration, one combinational traversal, Table I latency.");
    Ok(())
}
