//! Runtime power-gating walkthrough (§III): reconfigure the MoT switch
//! modes mid-run, flush dirty banks, and verify no store is lost.
//!
//! ```text
//! cargo run --example power_gating
//! ```

use mot3d::mem::addr::AddressMap;
use mot3d::mot::reconfig::MotConfiguration;
use mot3d::mot::switch::RoutingMode;
use mot3d::mot::topology::{MotTopology, SwitchAddr};
use mot3d::prelude::*;
use mot3d::workloads::streams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. What the modified routing switch does (Fig. 3/4) -----------
    let topo = MotTopology::date16();
    let cfg = MotConfiguration::new(topo, PowerState::pc16_mb8())?;
    println!("PC16-MB8 on the 16×32 MoT:");
    println!("  live banks: {:?}", cfg.active_banks());
    println!("  ignored bank-index bits: {:#07b}", cfg.folded_bank_bits());
    let map = AddressMap::date16();
    for addr in [0x1000_0000u64, 0x1000_0020, 0x1000_0400] {
        let home = map.home_bank(map.line_of(addr));
        println!(
            "  address {addr:#x}: home bank {home:>2} → physical bank {:>2}",
            cfg.remap_bank(home)
        );
    }
    println!("  switch modes at routing level 2 (the folded level):");
    for index in 0..2 {
        let sw = SwitchAddr { level: 2, index };
        let mode = cfg.routing_mode(sw);
        let gray = matches!(mode, RoutingMode::UserDefined(_));
        println!(
            "    level 2, switch {index}: {mode}{}",
            if gray {
                "   <- Fig. 4's gray circle"
            } else {
                ""
            }
        );
    }

    // --- 2. Gate banks *while a program runs* --------------------------
    let mut sim_cfg = SimConfig::date16();
    sim_cfg.check_golden = true; // verify every load against an oracle
    let spec = SplashBenchmark::Fft.spec().scaled(0.01);
    let mut cluster = Cluster::new(sim_cfg, streams(&spec, 16, 42))?;

    for _ in 0..10_000 {
        if cluster.is_done() {
            break;
        }
        cluster.step();
    }
    println!("\nafter 10 k cycles in Full connection: switching to PC16-MB8 ...");
    cluster.switch_power_state(PowerState::pc16_mb8())?;
    cluster.verify_against_golden();
    println!("  dirty lines flushed over the Miss bus; oracle check passed");

    for _ in 0..10_000 {
        if cluster.is_done() {
            break;
        }
        cluster.step();
    }
    println!("after 10 k more cycles: back to Full connection ...");
    cluster.switch_power_state(PowerState::full())?;
    cluster.verify_against_golden();
    println!("  folded lines went home; oracle check passed");

    cluster.run_to_completion()?;
    cluster.verify_against_golden();
    let m = cluster.metrics("fft with runtime gating");
    println!(
        "run finished: {} cycles, {} invalidations, {} recalls, all stores intact",
        m.cycles, m.invalidations, m.recalls
    );
    Ok(())
}
